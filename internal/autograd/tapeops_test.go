package autograd

import (
	"math/rand"
	"testing"

	"gnnmark/internal/ops"
	"gnnmark/internal/tensor"
)

// tapeOpGradCheck verifies one tape op's input gradient numerically.
func tapeOpGradCheck(t *testing.T, name string, shape []int, apply func(tp *Tape, v *Var) *Var) {
	t.Helper()
	e := ops.New(nil)
	rng := rand.New(rand.NewSource(31))
	p := NewParam(name, tensor.Rand(rng, 1, shape...))
	var wShape []int
	run := func() (*Tape, *Var) {
		tp := NewTape(e)
		out := apply(tp, tp.FromParam(p))
		if wShape == nil {
			wShape = out.Value.Shape()
		}
		w := tensor.New(wShape...)
		for i := range w.Data() {
			w.Data()[i] = float32((i%7))*0.3 - 0.8
		}
		return tp, tp.MeanAll(tp.Mul(out, tp.Const(w)))
	}
	lossOnly := func() float64 { _, l := run(); return float64(l.Value.At(0)) }
	analytic := func() *tensor.Tensor {
		p.ZeroGrad()
		tp, l := run()
		tp.Backward(l)
		return p.Grad
	}
	gradCheck(t, name, p, lossOnly, analytic, 3e-2)
}

func TestPermute4DGradient(t *testing.T) {
	tapeOpGradCheck(t, "permute", []int{2, 3, 2, 2}, func(tp *Tape, v *Var) *Var {
		return tp.Permute4D(v, [4]int{2, 0, 3, 1})
	})
}

func TestSliceColsGradient(t *testing.T) {
	tapeOpGradCheck(t, "slicecols", []int{3, 6}, func(tp *Tape, v *Var) *Var {
		return tp.SliceCols(v, 1, 4)
	})
}

func TestSliceRowsGradient(t *testing.T) {
	tapeOpGradCheck(t, "slicerows", []int{5, 3}, func(tp *Tape, v *Var) *Var {
		return tp.SliceRows(v, 1, 4)
	})
}

func TestConcatRowsGradient(t *testing.T) {
	tapeOpGradCheck(t, "concatrows", []int{3, 4}, func(tp *Tape, v *Var) *Var {
		other := tp.Const(tensor.Full(0.5, 2, 4))
		return tp.ConcatRows(v, other)
	})
}

func TestConcatColsGradient(t *testing.T) {
	tapeOpGradCheck(t, "concat", []int{3, 2}, func(tp *Tape, v *Var) *Var {
		other := tp.Const(tensor.Full(0.5, 3, 3))
		return tp.Concat(v, other)
	})
}

func TestGLU4DGradient(t *testing.T) {
	tapeOpGradCheck(t, "glu", []int{2, 4, 3, 2}, func(tp *Tape, v *Var) *Var {
		return tp.GLU4D(v)
	})
}

func TestBatchNorm2DGradient(t *testing.T) {
	e := ops.New(nil)
	rng := rand.New(rand.NewSource(32))
	x := NewParam("x", tensor.Rand(rng, 1, 2, 3, 2, 2))
	gamma := NewParam("gamma", tensor.Full(1.2, 3))
	beta := NewParam("beta", tensor.New(3))
	w := tensor.Rand(rng, 1, 2, 3, 2, 2)

	run := func() (*Tape, *Var) {
		tp := NewTape(e)
		out := tp.BatchNorm2D(tp.FromParam(x), tp.FromParam(gamma), tp.FromParam(beta), 1e-5)
		return tp, tp.MeanAll(tp.Mul(out, tp.Const(w)))
	}
	lossOnly := func() float64 { _, l := run(); return float64(l.Value.At(0)) }
	mk := func(p *Param) func() *tensor.Tensor {
		return func() *tensor.Tensor {
			x.ZeroGrad()
			gamma.ZeroGrad()
			beta.ZeroGrad()
			tp, l := run()
			tp.Backward(l)
			return p.Grad
		}
	}
	gradCheck(t, "bn2d-x", x, lossOnly, mk(x), 5e-2)
	gradCheck(t, "bn2d-gamma", gamma, lossOnly, mk(gamma), 5e-2)
	gradCheck(t, "bn2d-beta", beta, lossOnly, mk(beta), 5e-2)
}

func TestAddChannelBiasGradient(t *testing.T) {
	e := ops.New(nil)
	rng := rand.New(rand.NewSource(33))
	bias := NewParam("cbias", tensor.Rand(rng, 1, 3))
	x := tensor.Rand(rng, 1, 2, 3, 2, 2)
	w := tensor.Rand(rng, 1, 2, 3, 2, 2)

	run := func() (*Tape, *Var) {
		tp := NewTape(e)
		out := tp.AddChannelBias(tp.Const(x), tp.FromParam(bias))
		return tp, tp.MeanAll(tp.Mul(out, tp.Const(w)))
	}
	lossOnly := func() float64 { _, l := run(); return float64(l.Value.At(0)) }
	analytic := func() *tensor.Tensor {
		bias.ZeroGrad()
		tp, l := run()
		tp.Backward(l)
		return bias.Grad
	}
	gradCheck(t, "channel-bias", bias, lossOnly, analytic, 2e-2)
}

func TestMaxMarginGradient(t *testing.T) {
	e := ops.New(nil)
	rng := rand.New(rand.NewSource(34))
	pos := NewParam("pos", tensor.Rand(rng, 1, 6))
	neg := tensor.Rand(rng, 1, 6)
	// Move scores away from the hinge kink for stable finite differences.
	for i := range pos.Value.Data() {
		d := pos.Value.Data()[i] - neg.Data()[i] - 0.5
		if d > -0.15 && d < 0.15 {
			pos.Value.Data()[i] += 0.4
		}
	}
	run := func() (*Tape, *Var) {
		tp := NewTape(e)
		return tp, tp.MaxMargin(tp.FromParam(pos), tp.Const(neg), 0.5)
	}
	lossOnly := func() float64 { _, l := run(); return float64(l.Value.At(0)) }
	analytic := func() *tensor.Tensor {
		pos.ZeroGrad()
		tp, l := run()
		tp.Backward(l)
		return pos.Grad
	}
	gradCheck(t, "maxmargin", pos, lossOnly, analytic, 2e-2)
}

func TestSumColsGradient(t *testing.T) {
	tapeOpGradCheck(t, "sumcols", []int{4, 3}, func(tp *Tape, v *Var) *Var {
		s := tp.SumCols(v) // (4)
		return tp.Reshape(s, 4, 1)
	})
}

func TestScaleAndSubGradients(t *testing.T) {
	tapeOpGradCheck(t, "scale", []int{3, 3}, func(tp *Tape, v *Var) *Var {
		return tp.Scale(v, -2.5)
	})
	tapeOpGradCheck(t, "sub", []int{3, 3}, func(tp *Tape, v *Var) *Var {
		return tp.Sub(tp.Const(tensor.Full(1, 3, 3)), v)
	})
}

func TestDropoutZeroPIsIdentity(t *testing.T) {
	e := ops.New(nil)
	tp := NewTape(e)
	x := tp.Const(tensor.Full(2, 3))
	y := tp.Dropout(x, 0, rand.New(rand.NewSource(1)))
	if y != x {
		t.Fatal("p=0 dropout should be a no-op returning the same Var")
	}
}

func TestInputPropagatesGradient(t *testing.T) {
	e := ops.New(nil)
	tp := NewTape(e)
	v := tp.Input(tensor.Full(3, 2, 2))
	loss := tp.MeanAll(tp.Mul(v, v))
	tp.Backward(loss)
	if v.Grad() == nil || v.Grad().MaxAbs() == 0 {
		t.Fatal("Input var must accumulate gradients")
	}
	if tp.NumNodes() < 3 {
		t.Fatal("tape did not record nodes")
	}
}

// The tests below complete the finite-difference audit: every tape op whose
// backward was previously exercised only indirectly (or not at all) gets a
// direct gradcheck here.

func TestMatMulAGradient(t *testing.T) {
	// TestLinearGradients checks MatMul's right operand (the weight); this
	// covers the left operand, whose backward goes through MatMulTB.
	b := tensor.Rand(rand.New(rand.NewSource(41)), 1, 4, 2)
	tapeOpGradCheck(t, "matmul-a", []int{3, 4}, func(tp *Tape, v *Var) *Var {
		return tp.MatMul(v, tp.Const(b))
	})
}

func TestMatMulTBGradients(t *testing.T) {
	// a @ bᵀ: dA = dY @ B, dB = dYᵀ @ A — check both operand roles.
	b := tensor.Rand(rand.New(rand.NewSource(42)), 1, 2, 4)
	tapeOpGradCheck(t, "matmultb-a", []int{3, 4}, func(tp *Tape, v *Var) *Var {
		return tp.MatMulTB(v, tp.Const(b))
	})
	a := tensor.Rand(rand.New(rand.NewSource(43)), 1, 3, 4)
	tapeOpGradCheck(t, "matmultb-b", []int{2, 4}, func(tp *Tape, v *Var) *Var {
		return tp.MatMulTB(tp.Const(a), v)
	})
}

func TestAddGradients(t *testing.T) {
	other := tensor.Rand(rand.New(rand.NewSource(44)), 1, 3, 3)
	tapeOpGradCheck(t, "add-a", []int{3, 3}, func(tp *Tape, v *Var) *Var {
		return tp.Add(v, tp.Const(other))
	})
	tapeOpGradCheck(t, "add-b", []int{3, 3}, func(tp *Tape, v *Var) *Var {
		return tp.Add(tp.Const(other), v)
	})
}

func TestMulGradients(t *testing.T) {
	// Mul appears in every gradcheck loss with a constant right operand;
	// check each operand role directly against a non-constant partner.
	other := tensor.Rand(rand.New(rand.NewSource(45)), 1, 3, 3)
	tapeOpGradCheck(t, "mul-a", []int{3, 3}, func(tp *Tape, v *Var) *Var {
		return tp.Mul(v, tp.Const(other))
	})
	tapeOpGradCheck(t, "mul-b", []int{3, 3}, func(tp *Tape, v *Var) *Var {
		return tp.Mul(tp.Const(other), v)
	})
}

func TestSumAllMeanAllGradients(t *testing.T) {
	tapeOpGradCheck(t, "sumall", []int{3, 4}, func(tp *Tape, v *Var) *Var {
		return tp.SumAll(v)
	})
	tapeOpGradCheck(t, "meanall", []int{3, 4}, func(tp *Tape, v *Var) *Var {
		return tp.MeanAll(v)
	})
}

func TestSumRowsGradient(t *testing.T) {
	tapeOpGradCheck(t, "sumrows", []int{4, 3}, func(tp *Tape, v *Var) *Var {
		return tp.SumRows(v) // (3)
	})
}

func TestReshapeGradient(t *testing.T) {
	tapeOpGradCheck(t, "reshape", []int{2, 6}, func(tp *Tape, v *Var) *Var {
		return tp.Reshape(v, 3, 4)
	})
}

func TestMaxPool2DGradient(t *testing.T) {
	tapeOpGradCheck(t, "maxpool2d", []int{1, 2, 4, 4}, func(tp *Tape, v *Var) *Var {
		return tp.MaxPool2D(v, 2)
	})
}

func TestGatherRowsGradient(t *testing.T) {
	// Duplicate indices exercise the scatter-add accumulation in backward.
	idx := []int32{4, 0, 2, 2}
	tapeOpGradCheck(t, "gatherrows", []int{5, 3}, func(tp *Tape, v *Var) *Var {
		return tp.GatherRows(v, idx)
	})
}

func TestIndexSelectRowsGradient(t *testing.T) {
	idx := []int32{1, 3, 3, 0}
	tapeOpGradCheck(t, "indexselectrows", []int{5, 3}, func(tp *Tape, v *Var) *Var {
		return tp.IndexSelectRows(v, idx)
	})
}
