package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"gnnmark/internal/gpu"
	"gnnmark/internal/obs"
)

func TestHostEventsMergeAsSecondProcess(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Reset()
		obs.Disable()
	}()
	obs.Reset()

	tr := obs.NewTrack("host-test")
	if tr == nil {
		t.Fatal("NewTrack returned nil with obs enabled")
	}
	outer := tr.Begin("epoch", "phase")
	tr.Record("op", "GEMM", obs.Nanos(), 10)
	outer.End()

	dev, r := testDev()
	launch(dev, gpu.OpGEMM, 1<<12)

	merged := append(r.TimelineEvents(), HostEvents()...)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, merged); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}

	pids := map[int]bool{}
	hostSlices, hostNamed := 0, false
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
		if e.PID == HostPID {
			if e.Ph == "X" {
				hostSlices++
			}
			if e.Ph == "M" && e.Name == "process_name" && e.Args["name"] == "host" {
				hostNamed = true
			}
		}
	}
	if !pids[DevicePID] || !pids[HostPID] {
		t.Fatalf("merged trace missing a process: pids = %v", pids)
	}
	if hostSlices < 2 {
		t.Fatalf("host slices = %d, want >= 2 (epoch span + recorded op)", hostSlices)
	}
	if !hostNamed {
		t.Fatal("host process_name metadata missing")
	}
}
