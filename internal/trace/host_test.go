package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"gnnmark/internal/gpu"
	"gnnmark/internal/obs"
	"gnnmark/internal/stream"
)

func TestHostEventsMergeAsSecondProcess(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Reset()
		obs.Disable()
	}()
	obs.Reset()

	tr := obs.NewTrack("host-test")
	if tr == nil {
		t.Fatal("NewTrack returned nil with obs enabled")
	}
	outer := tr.Begin("epoch", "phase")
	tr.Record("op", "GEMM", obs.Nanos(), 10)
	outer.End()

	dev, r := testDev()
	launch(dev, gpu.OpGEMM, 1<<12)

	merged := append(r.TimelineEvents(), HostEvents()...)
	var buf bytes.Buffer
	if err := WriteEvents(&buf, merged); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}

	pids := map[int]bool{}
	hostSlices, hostNamed := 0, false
	for _, e := range doc.TraceEvents {
		pids[e.PID] = true
		if e.PID == HostPID {
			if e.Ph == "X" {
				hostSlices++
			}
			if e.Ph == "M" && e.Name == "process_name" && e.Args["name"] == "host" {
				hostNamed = true
			}
		}
	}
	if !pids[DevicePID] || !pids[HostPID] {
		t.Fatalf("merged trace missing a process: pids = %v", pids)
	}
	if hostSlices < 2 {
		t.Fatalf("host slices = %d, want >= 2 (epoch span + recorded op)", hostSlices)
	}
	if !hostNamed {
		t.Fatal("host process_name metadata missing")
	}
}

func TestStreamLaneEventsNameCopyEngineRow(t *testing.T) {
	cfg := gpu.V100()
	cfg.MaxSampledWarps = 64
	dev := gpu.New(cfg)
	tl := stream.New(dev)
	compute := tl.NewStream("compute")
	copyEng := tl.NewStream("copy engine")
	copyEng.CopyH2D("feat", 1<<20, 1<<18, 0.9)
	compute.Wait(copyEng.Record())
	compute.Launch(&gpu.Kernel{Name: "gemm", Class: gpu.OpGEMM, Threads: 1 << 10})

	events := StreamLaneEvents(tl.Lanes())
	var laneNames []string
	slices := map[int]int{} // tid -> X count
	for _, e := range events {
		if e.PID != DevicePID {
			t.Fatalf("stream lane event on pid %d, want DevicePID", e.PID)
		}
		if e.Ph == "M" && e.Name == "thread_name" {
			if e.TID < streamTIDBase {
				t.Fatalf("lane tid %d collides with per-class device rows", e.TID)
			}
			laneNames = append(laneNames, e.Args["name"])
		}
		if e.Ph == "X" {
			slices[e.TID]++
		}
	}
	want := []string{"stream: compute", "stream: copy engine"}
	if len(laneNames) != 2 || laneNames[0] != want[0] || laneNames[1] != want[1] {
		t.Fatalf("lane names = %v, want %v", laneNames, want)
	}
	if slices[streamTIDBase] != 1 || slices[streamTIDBase+1] != 1 {
		t.Fatalf("per-lane slice counts = %v, want one each", slices)
	}
	// Copy slices carry the wire-byte payload for inspection in Perfetto.
	for _, e := range events {
		if e.Ph == "X" && e.Cat == "copy" && e.Args["wire_bytes"] != "262144" {
			t.Fatalf("copy slice args = %v, want wire_bytes=262144", e.Args)
		}
	}
}
