// Package trace records the simulated kernel timeline and exports it in the
// Chrome trace-event format (chrome://tracing, Perfetto), giving the
// reproduction the visual timeline view nvprof/Nsight provide for real
// runs: one row per operation class, one slice per kernel, with the
// exposed launch gaps visible between slices. Host-side spans from
// internal/obs merge in as a second process (host.go), so compute, copy,
// and host time line up in one view.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"gnnmark/internal/gpu"
)

// DevicePID is the trace-event process id of the simulated device rows.
const DevicePID = 1

// Event is one Chrome trace-event: "X" complete events on the timeline,
// "M" metadata events naming processes and threads.
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`            // microseconds
	Dur  float64           `json:"dur,omitempty"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Recorder subscribes to a device and accumulates the kernel timeline.
type Recorder struct {
	events  []Event
	clock   float64 // device-time cursor in seconds
	limit   int
	dropped int
}

// Attach subscribes a new recorder to dev. limit caps the recorded events
// (0 = 100k) so long runs cannot exhaust memory; past the cap, kernels are
// counted into the clock (and into Dropped) but not recorded.
func Attach(dev *gpu.Device, limit int) *Recorder {
	if limit <= 0 {
		limit = 100_000
	}
	r := &Recorder{limit: limit}
	dev.Subscribe(r.onKernel)
	dev.SubscribeTransfers(r.onTransfer)
	return r
}

func (r *Recorder) onKernel(ks gpu.KernelStats) {
	start := r.clock + ks.Launch // exposed launch gap precedes the kernel
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{
			Name: ks.Name,
			Cat:  ks.Class.String(),
			Ph:   "X",
			TS:   start * 1e6,
			Dur:  ks.Seconds * 1e6,
			PID:  DevicePID,
			TID:  int(ks.Class) + 1,
			Args: map[string]string{
				"flops":     fmt.Sprintf("%d", ks.Flops),
				"l1_hit":    fmt.Sprintf("%.3f", ks.L1HitRate()),
				"divergent": fmt.Sprintf("%.3f", ks.DivergenceRate()),
			},
		})
	} else {
		r.dropped++
	}
	r.clock = start + ks.Seconds
}

func (r *Recorder) onTransfer(ts gpu.TransferStats) {
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{
			Name: ts.Name,
			Cat:  "Transfer",
			Ph:   "X",
			TS:   r.clock * 1e6,
			Dur:  ts.Seconds * 1e6,
			PID:  DevicePID,
			TID:  0,
			Args: map[string]string{
				"bytes":    fmt.Sprintf("%d", ts.Bytes),
				"sparsity": fmt.Sprintf("%.3f", ts.ZeroFraction),
			},
		})
	} else {
		r.dropped++
	}
	r.clock += ts.Seconds
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Dropped returns how many device events arrived after the recorder hit
// its limit and were counted into the clock but not recorded.
func (r *Recorder) Dropped() int { return r.dropped }

// Events returns the recorded timeline events (shared slice; do not mutate).
func (r *Recorder) Events() []Event { return r.events }

// metaEvent builds a Chrome "M" metadata event.
func metaEvent(name string, pid, tid int, args map[string]string) Event {
	return Event{Name: name, Ph: "M", PID: pid, TID: tid, Args: args}
}

// TimelineEvents returns the device timeline with naming metadata
// prepended: the device process name, one named row per operation class
// (plus the Transfer row at tid 0), and — when events were dropped at the
// limit — a device_events_dropped metadata event carrying the count.
func (r *Recorder) TimelineEvents() []Event {
	meta := []Event{
		metaEvent("process_name", DevicePID, 0, map[string]string{"name": "simulated device"}),
		metaEvent("thread_name", DevicePID, 0, map[string]string{"name": "Transfer"}),
	}
	for _, c := range gpu.AllOpClasses() {
		meta = append(meta, metaEvent("thread_name", DevicePID, int(c)+1,
			map[string]string{"name": c.String()}))
	}
	if r.dropped > 0 {
		meta = append(meta, metaEvent("device_events_dropped", DevicePID, 0,
			map[string]string{"count": fmt.Sprintf("%d", r.dropped)}))
	}
	return append(meta, r.events...)
}

// WriteEvents writes any event slice as a Chrome trace-event document.
func WriteEvents(w io.Writer, events []Event) error {
	doc := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: events}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("trace: encoding timeline: %w", err)
	}
	return nil
}

// WriteTimeline writes the device timeline (with metadata rows) and
// reports how many events the limit dropped.
func (r *Recorder) WriteTimeline(w io.Writer) (dropped int, err error) {
	return r.dropped, WriteEvents(w, r.TimelineEvents())
}

// WriteJSON writes the timeline in the Chrome trace-event array format.
func (r *Recorder) WriteJSON(w io.Writer) error {
	_, err := r.WriteTimeline(w)
	return err
}
