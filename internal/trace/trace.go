// Package trace records the simulated kernel timeline and exports it in the
// Chrome trace-event format (chrome://tracing, Perfetto), giving the
// reproduction the visual timeline view nvprof/Nsight provide for real
// runs: one row per operation class, one slice per kernel, with the
// exposed launch gaps visible between slices.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"gnnmark/internal/gpu"
)

// Event is one Chrome trace-event ("X" complete events only).
type Event struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`  // microseconds
	Dur  float64           `json:"dur"` // microseconds
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// Recorder subscribes to a device and accumulates the kernel timeline.
type Recorder struct {
	events []Event
	clock  float64 // device-time cursor in seconds
	limit  int
}

// Attach subscribes a new recorder to dev. limit caps the recorded events
// (0 = 100k) so long runs cannot exhaust memory; past the cap, kernels are
// counted into the clock but not recorded.
func Attach(dev *gpu.Device, limit int) *Recorder {
	if limit <= 0 {
		limit = 100_000
	}
	r := &Recorder{limit: limit}
	dev.Subscribe(r.onKernel)
	dev.SubscribeTransfers(r.onTransfer)
	return r
}

func (r *Recorder) onKernel(ks gpu.KernelStats) {
	start := r.clock + ks.Launch // exposed launch gap precedes the kernel
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{
			Name: ks.Name,
			Cat:  ks.Class.String(),
			Ph:   "X",
			TS:   start * 1e6,
			Dur:  ks.Seconds * 1e6,
			PID:  1,
			TID:  int(ks.Class) + 1,
			Args: map[string]string{
				"flops":     fmt.Sprintf("%d", ks.Flops),
				"l1_hit":    fmt.Sprintf("%.3f", ks.L1HitRate()),
				"divergent": fmt.Sprintf("%.3f", ks.DivergenceRate()),
			},
		})
	}
	r.clock = start + ks.Seconds
}

func (r *Recorder) onTransfer(ts gpu.TransferStats) {
	if len(r.events) < r.limit {
		r.events = append(r.events, Event{
			Name: ts.Name,
			Cat:  "Transfer",
			Ph:   "X",
			TS:   r.clock * 1e6,
			Dur:  ts.Seconds * 1e6,
			PID:  1,
			TID:  0,
			Args: map[string]string{
				"bytes":    fmt.Sprintf("%d", ts.Bytes),
				"sparsity": fmt.Sprintf("%.3f", ts.ZeroFraction),
			},
		})
	}
	r.clock += ts.Seconds
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Events returns the recorded events (shared slice; do not mutate).
func (r *Recorder) Events() []Event { return r.events }

// WriteJSON writes the timeline in the Chrome trace-event array format.
func (r *Recorder) WriteJSON(w io.Writer) error {
	doc := struct {
		TraceEvents []Event `json:"traceEvents"`
	}{TraceEvents: r.events}
	if err := json.NewEncoder(w).Encode(doc); err != nil {
		return fmt.Errorf("trace: encoding timeline: %w", err)
	}
	return nil
}
