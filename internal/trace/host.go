package trace

import (
	"fmt"

	"gnnmark/internal/obs"
	"gnnmark/internal/stream"
)

// HostPID is the trace-event process id of the host-side span rows. The
// device timeline renders as pid 1 (DevicePID); host tracks from
// internal/obs render as a second process so Perfetto stacks them in one
// view, one row per track (the engine's phase/op spans, the DDP reducer).
const HostPID = 2

// HostEvents converts every registered obs track into Chrome trace
// events under HostPID: a process_name row, a thread_name row per track,
// one "X" slice per span (nesting drawn from span containment), and a
// host_spans_dropped metadata event per track that hit its span cap.
//
// Host spans are stamped in real wall-clock nanoseconds since process
// start, while device events live on the simulated device clock; both
// start near zero, so the merged view lines the two planes up without
// pretending they share a clock.
func HostEvents() []Event {
	tracks := obs.Tracks()
	if len(tracks) == 0 {
		return nil
	}
	events := []Event{
		metaEvent("process_name", HostPID, 0, map[string]string{"name": "host"}),
	}
	for _, tr := range tracks {
		events = append(events, metaEvent("thread_name", HostPID, tr.ID,
			map[string]string{"name": tr.Name}))
		if tr.Dropped > 0 {
			events = append(events, metaEvent("host_spans_dropped", HostPID, tr.ID,
				map[string]string{"count": fmt.Sprintf("%d", tr.Dropped)}))
		}
		for _, sp := range tr.Spans {
			events = append(events, Event{
				Name: sp.Name,
				Cat:  sp.Cat,
				Ph:   "X",
				TS:   float64(sp.Start) / 1e3, // ns -> us
				Dur:  float64(sp.Dur) / 1e3,
				PID:  HostPID,
				TID:  tr.ID,
			})
		}
	}
	return events
}

// streamTIDBase offsets stream-lane thread ids past the per-op-class device
// rows (tid 0 = transfers, class+1 = kernels).
const streamTIDBase = 100

// StreamLaneEvents converts the overlapped-timeline stream lanes into
// Chrome trace events under DevicePID: a named thread row per stream
// (compute, copy engine) at tids >= streamTIDBase, one "X" slice per
// enqueued item, and a stream_slices_dropped metadata event for lanes that
// hit the slice cap. Lane times are simulated seconds from the timeline
// origin, so the rows line up with the serialized device rows.
func StreamLaneEvents(lanes []stream.Lane) []Event {
	var events []Event
	for i, lane := range lanes {
		tid := streamTIDBase + i
		events = append(events, metaEvent("thread_name", DevicePID, tid,
			map[string]string{"name": "stream: " + lane.Name}))
		if lane.Dropped > 0 {
			events = append(events, metaEvent("stream_slices_dropped", DevicePID, tid,
				map[string]string{"count": fmt.Sprintf("%d", lane.Dropped)}))
		}
		for _, sl := range lane.Slices {
			ev := Event{
				Name: sl.Name,
				Cat:  sl.Cat,
				Ph:   "X",
				TS:   sl.Start * 1e6, // sec -> us
				Dur:  sl.Dur * 1e6,
				PID:  DevicePID,
				TID:  tid,
			}
			if sl.Bytes > 0 {
				ev.Args = map[string]string{"wire_bytes": fmt.Sprintf("%d", sl.Bytes)}
			}
			events = append(events, ev)
		}
	}
	return events
}
