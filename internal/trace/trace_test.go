package trace

import (
	"bytes"
	"encoding/json"
	"testing"

	"gnnmark/internal/gpu"
)

func testDev() (*gpu.Device, *Recorder) {
	cfg := gpu.V100()
	cfg.MaxSampledWarps = 512
	dev := gpu.New(cfg)
	return dev, Attach(dev, 0)
}

func launch(dev *gpu.Device, class gpu.OpClass, n int) gpu.KernelStats {
	return dev.Launch(&gpu.Kernel{
		Name: "k-" + class.String(), Class: class, Threads: n,
		Mix:      gpu.InstrMix{Fp32: uint64(n) * 8, Load: uint64(n)},
		Flops:    uint64(n) * 16,
		Accesses: []gpu.Access{{Kind: gpu.LoadAccess, Base: dev.Alloc(4 * n), ElemBytes: 4, Count: n, Stride: 1}},
	})
}

func TestRecorderBuildsOrderedTimeline(t *testing.T) {
	dev, r := testDev()
	launch(dev, gpu.OpGEMM, 1<<14)
	dev.CopyH2D("feat", 1<<16, 0.3)
	launch(dev, gpu.OpScatter, 1<<12)

	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	// Events must be time-ordered and non-overlapping on the device.
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS+evs[i-1].Dur-1e-9 {
			t.Fatalf("event %d overlaps predecessor: %v then %v", i, evs[i-1], evs[i])
		}
	}
	if evs[0].Cat != "GEMM" || evs[1].Cat != "Transfer" || evs[2].Cat != "Scatter" {
		t.Fatalf("categories wrong: %s %s %s", evs[0].Cat, evs[1].Cat, evs[2].Cat)
	}
	if evs[0].Dur <= 0 {
		t.Fatal("zero-duration kernel")
	}
	if evs[0].Args["flops"] == "" || evs[1].Args["sparsity"] == "" {
		t.Fatal("args missing")
	}
}

func TestRecorderLimit(t *testing.T) {
	cfg := gpu.V100()
	cfg.MaxSampledWarps = 256
	dev := gpu.New(cfg)
	r := Attach(dev, 2)
	for i := 0; i < 5; i++ {
		launch(dev, gpu.OpElementWise, 1<<10)
	}
	if r.Len() != 2 {
		t.Fatalf("limit not enforced: %d events", r.Len())
	}
	if r.Dropped() != 3 {
		t.Fatalf("Dropped() = %d, want 3", r.Dropped())
	}
	// The drop count must surface in the written timeline as metadata.
	var buf bytes.Buffer
	dropped, err := r.WriteTimeline(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 3 {
		t.Fatalf("WriteTimeline dropped = %d, want 3", dropped)
	}
	found := false
	for _, e := range r.TimelineEvents() {
		if e.Ph == "M" && e.Name == "device_events_dropped" {
			if e.Args["count"] != "3" {
				t.Fatalf("dropped metadata count = %q, want 3", e.Args["count"])
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no device_events_dropped metadata event")
	}
}

func TestWriteJSONIsValidChromeTrace(t *testing.T) {
	dev, r := testDev()
	launch(dev, gpu.OpGEMM, 1<<12)
	launch(dev, gpu.OpSort, 1<<10)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	var slices, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.PID != DevicePID {
				t.Fatalf("slice on pid %d, want %d: %+v", e.PID, DevicePID, e)
			}
		case "M":
			meta++
		default:
			t.Fatalf("malformed event %+v", e)
		}
	}
	if slices != 2 {
		t.Fatalf("round trip lost events: %d slices", slices)
	}
	// process_name + Transfer row + one row per op class, no drop marker.
	if want := 2 + gpu.NumOpClasses; meta != want {
		t.Fatalf("metadata events = %d, want %d", meta, want)
	}
}
