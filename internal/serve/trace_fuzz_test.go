package serve

import (
	"errors"
	"strings"
	"testing"
)

// FuzzArrivalTrace: the trace parser must never panic, and every rejection
// must be the typed *TraceError (reader I/O aside) — malformed, duplicate,
// and out-of-order timestamps included.
func FuzzArrivalTrace(f *testing.F) {
	f.Add("100 5\n250 7\n")
	f.Add("# comment\n\n100 1\n")
	f.Add("100 1\n50 2\n")
	f.Add("100 1\n100 2\n")
	f.Add("-5 1\n")
	f.Add("abc def\n")
	f.Add("100\n")
	f.Add("100 1 2 3\n")
	f.Add("9223372036854775807 2147483647\n")
	f.Add("9999999999999999999999 1\n")
	f.Add("100 -1\n")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, input string) {
		reqs, err := ParseArrivalTrace(strings.NewReader(input))
		if err != nil {
			var te *TraceError
			if !errors.As(err, &te) {
				t.Fatalf("non-typed error %T: %v", err, err)
			}
			if te.Line <= 0 {
				t.Fatalf("TraceError without a line: %+v", te)
			}
			return
		}
		// Accepted traces uphold the invariants the server relies on.
		last := -1.0
		for i, r := range reqs {
			if r.Time <= last {
				t.Fatalf("request %d at %v not strictly after %v", i, r.Time, last)
			}
			last = r.Time
			if r.Item < 0 {
				t.Fatalf("request %d negative item %d", i, r.Item)
			}
			if r.Seq != i {
				t.Fatalf("request %d has seq %d", i, r.Seq)
			}
		}
	})
}
