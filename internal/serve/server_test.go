package serve

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"gnnmark/internal/tensor"
)

// fakeModel serves embeddings with an analytic cost model — fixed per-batch
// overhead plus linear per-request work — so batching-policy behavior can be
// asserted exactly without a simulated device.
type fakeModel struct {
	clock  float64
	fixed  float64 // per-batch seconds (launch overheads, copies)
	perReq float64 // per-request seconds
	items  int
	dim    int
}

func (m *fakeModel) ServeEmbed(ids []int32) *tensor.Tensor {
	m.clock += m.fixed + m.perReq*float64(len(ids))
	out := tensor.New(len(ids), m.dim)
	for i, id := range ids {
		out.Row(i)[0] = float32(id)
	}
	return out
}

func (m *fakeModel) NumItems() int { return m.items }
func (m *fakeModel) EmbedDim() int { return m.dim }

func fakeReplicas(n int, fixed, perReq float64) []*Replica {
	reps := make([]*Replica, n)
	for r := 0; r < n; r++ {
		m := &fakeModel{fixed: fixed, perReq: perReq, items: 100, dim: 4}
		reps[r] = NewReplica(r, m, func() float64 { return m.clock })
	}
	return reps
}

func closeReplicas(reps []*Replica) {
	for _, r := range reps {
		r.Close()
	}
}

func TestServerBatchesUnderfullAtMaxWait(t *testing.T) {
	reps := fakeReplicas(1, 0.001, 0.0001)
	defer closeReplicas(reps)
	s := New(Config{Endpoint: "t1", MaxBatch: 8, MaxWaitSeconds: 0.005}, reps)
	src := NewSliceSource([]Request{
		{Time: 0.000, Item: 1},
		{Time: 0.001, Item: 2},
	})
	st, err := s.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.Completed != 2 {
		t.Fatalf("batches %d completed %d, want 1 batch of 2", st.Batches, st.Completed)
	}
	// Dispatch at 0.005 (oldest + window), cost 0.001 + 2*0.0001.
	wantDone := 0.005 + 0.0012
	if math.Abs(st.Makespan-wantDone) > 1e-12 {
		t.Fatalf("makespan %v, want %v", st.Makespan, wantDone)
	}
	// First request waited the whole window; p99 is its latency.
	if math.Abs(st.P99-(wantDone-0)) > 1e-12 {
		t.Fatalf("p99 %v, want %v", st.P99, wantDone)
	}
}

func TestServerFullBatchDispatchesEarly(t *testing.T) {
	reps := fakeReplicas(1, 0.001, 0.0001)
	defer closeReplicas(reps)
	s := New(Config{Endpoint: "t2", MaxBatch: 2, MaxWaitSeconds: 1.0}, reps)
	src := NewSliceSource([]Request{
		{Time: 0.000, Item: 1},
		{Time: 0.001, Item: 2},
		{Time: 0.002, Item: 3},
	})
	st, err := s.Run(src)
	if err != nil {
		t.Fatal(err)
	}
	// The second arrival fills the first batch at t=0.001 — long before the
	// 1s window — and the third dispatches once the replica frees.
	if st.Batches != 2 {
		t.Fatalf("batches = %d, want 2", st.Batches)
	}
	if st.P50 >= 1.0 {
		t.Fatalf("p50 %v: full batches did not dispatch early", st.P50)
	}
}

func TestServerOverloadRejectsTyped(t *testing.T) {
	q := NewAdmissionQueue(2)
	if err := q.Push(Request{}); err != nil {
		t.Fatal(err)
	}
	if err := q.Push(Request{}); err != nil {
		t.Fatal(err)
	}
	err := q.Push(Request{})
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("overflow push error = %v, want *OverloadError", err)
	}
	if oe.Depth != 2 || oe.Cap != 2 {
		t.Fatalf("OverloadError = %+v", oe)
	}

	// End to end: a slow replica and a tight queue under a fast open trace
	// must reject, and accounting must balance.
	reps := fakeReplicas(1, 0.010, 0.001)
	defer closeReplicas(reps)
	s := New(Config{Endpoint: "t3", MaxBatch: 4, MaxWaitSeconds: 0.001, QueueCap: 4}, reps)
	var reqs []Request
	for i := 0; i < 100; i++ {
		reqs = append(reqs, Request{Time: float64(i) * 0.0005, Item: int32(i % 10)})
	}
	st, err := s.Run(NewSliceSource(reqs))
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected == 0 {
		t.Fatal("no rejections under overload")
	}
	if st.Completed+st.Rejected != st.Arrived {
		t.Fatalf("accounting: %d completed + %d rejected != %d arrived",
			st.Completed, st.Rejected, st.Arrived)
	}
	if st.MaxQueueDepth != 4 {
		t.Fatalf("max queue depth %d, want cap 4", st.MaxQueueDepth)
	}
}

func TestServerCacheHitsSkipCompute(t *testing.T) {
	run := func(cacheRows int) Stats {
		reps := fakeReplicas(1, 0.001, 0.0001)
		defer closeReplicas(reps)
		s := New(Config{Endpoint: "t4", MaxBatch: 4, MaxWaitSeconds: 0.0005, CacheRows: cacheRows}, reps)
		var reqs []Request
		for i := 0; i < 60; i++ {
			reqs = append(reqs, Request{Time: float64(i) * 0.01, Item: int32(i % 3)})
		}
		st, err := s.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cold := run(0)
	warm := run(16)
	if warm.CacheHits == 0 {
		t.Fatal("no cache hits on a repeating trace")
	}
	if warm.HitRate() < 0.5 {
		t.Fatalf("hit rate %v, want > 0.5 for 3 hot items", warm.HitRate())
	}
	if warm.MeanDeviceSeconds >= cold.MeanDeviceSeconds {
		t.Fatalf("cache did not reduce mean device time: %v vs %v",
			warm.MeanDeviceSeconds, cold.MeanDeviceSeconds)
	}
	if cold.CacheHits != 0 || cold.CacheMisses != 0 {
		t.Fatalf("cacheless run counted lookups: %+v", cold)
	}
}

func TestServerMultiReplicaOverlapsInSimTime(t *testing.T) {
	run := func(replicas int) Stats {
		reps := fakeReplicas(replicas, 0.010, 0)
		defer closeReplicas(reps)
		s := New(Config{Endpoint: "t5", MaxBatch: 1}, reps)
		var reqs []Request
		for i := 0; i < 8; i++ {
			reqs = append(reqs, Request{Time: float64(i) * 0.001, Item: int32(i)})
		}
		st, err := s.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	one, four := run(1), run(4)
	if four.Makespan >= one.Makespan {
		t.Fatalf("4 replicas no faster than 1: %v vs %v", four.Makespan, one.Makespan)
	}
	if four.Completed != one.Completed {
		t.Fatalf("completed %d vs %d", four.Completed, one.Completed)
	}
}

func TestServerDeterministic(t *testing.T) {
	run := func() (Stats, []float32) {
		reps := fakeReplicas(2, 0.002, 0.0002)
		defer closeReplicas(reps)
		s := New(Config{Endpoint: "t6", MaxBatch: 8, MaxWaitSeconds: 0.001, QueueCap: 16, CacheRows: 8}, reps)
		src := NewClosedSource(ClosedConfig{Seed: 5, Users: 12, ThinkSeconds: 0.004, Duration: 0.5, Items: 40})
		st, err := s.Run(src)
		if err != nil {
			t.Fatal(err)
		}
		return st, nil
	}
	a, _ := run()
	b, _ := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("reruns diverged:\n%+v\n%+v", a, b)
	}
	if a.Completed == 0 || a.QPS == 0 {
		t.Fatalf("closed-loop run served nothing: %+v", a)
	}
}

func TestReplicaPanicBecomesError(t *testing.T) {
	m := &fakeModel{items: 10, dim: 2}
	r := NewReplica(0, panicModel{m}, func() float64 { return m.clock })
	defer r.Close()
	s := New(Config{Endpoint: "t7", MaxBatch: 1}, []*Replica{r})
	_, err := s.Run(NewSliceSource([]Request{{Time: 0, Item: 1}}))
	if err == nil {
		t.Fatal("model panic did not surface as an error")
	}
}

type panicModel struct{ *fakeModel }

func (panicModel) ServeEmbed([]int32) *tensor.Tensor { panic("corrupt id") }
