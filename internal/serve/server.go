package serve

import (
	"container/heap"
	"math"
	"sort"

	"gnnmark/internal/obs"
	"gnnmark/internal/tensor"
)

// Config is one endpoint's serving policy.
type Config struct {
	// Endpoint names the endpoint in metrics and reports.
	Endpoint string
	// MaxBatch is the micro-batch size cap (default 1: no batching).
	MaxBatch int
	// MaxWaitSeconds is the batching window: an underfull batch dispatches
	// once its oldest request has waited this long (0: dispatch as soon as
	// a replica is free).
	MaxWaitSeconds float64
	// QueueCap bounds the admission queue; arrivals beyond it are rejected
	// with OverloadError (0: unbounded).
	QueueCap int
	// CacheRows is the embedding-cache capacity in rows (0: no cache).
	CacheRows int
}

// Source feeds the event loop its arrivals in simulated-time order. Peek
// returns the earliest pending arrival's time; Pop removes and returns it.
// Done reports a request's outcome time (completion, cache hit, or
// rejection) — closed-loop sources use it to schedule the issuing user's
// next request, open sources ignore it.
type Source interface {
	Peek() (float64, bool)
	Pop() Request
	Done(r Request, at float64)
}

// Stats is one endpoint's measured serving behavior over a Run.
type Stats struct {
	Endpoint string

	Arrived   int64
	Completed int64 // served (computed or cache hit)
	Rejected  int64 // admission overload

	CacheHits   int64
	CacheMisses int64

	Batches   int64
	MeanBatch float64 // mean requests per dispatched batch

	MaxQueueDepth int

	// Latency quantiles in simulated seconds, exact (computed from every
	// per-request latency, not bucketed).
	P50, P95, P99 float64
	MeanLatency   float64

	QPS float64 // completed / makespan

	DeviceSeconds     float64 // total device time across batches
	MeanDeviceSeconds float64 // per completed request

	Makespan float64 // last event's simulated time
}

// HitRate returns the cache hit fraction of lookups (0 with no cache).
func (s Stats) HitRate() float64 {
	if s.CacheHits+s.CacheMisses == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(s.CacheHits+s.CacheMisses)
}

// Server runs one endpoint: admission, micro-batching, replica dispatch,
// and completion accounting, all in simulated time.
type Server struct {
	cfg      Config
	replicas []*Replica
	freeAt   []float64
	queue    *AdmissionQueue
	cache    *EmbedCache

	arrivedC, completedC, rejectedC *obs.Counter
	hitsC, missesC                  *obs.Counter
	depthG                          *obs.Gauge
	batchH, latencyH                *obs.Histogram
}

// batchSizeBuckets buckets the dispatched micro-batch sizes.
var batchSizeBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// New builds a server over the given replicas (at least one), which must
// already hold the frozen weights.
func New(cfg Config, replicas []*Replica) *Server {
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 1
	}
	if cfg.MaxWaitSeconds < 0 {
		cfg.MaxWaitSeconds = 0
	}
	if cfg.Endpoint == "" {
		cfg.Endpoint = "default"
	}
	p := "serve." + cfg.Endpoint + "."
	return &Server{
		cfg:        cfg,
		replicas:   replicas,
		freeAt:     make([]float64, len(replicas)),
		queue:      NewAdmissionQueue(cfg.QueueCap),
		cache:      NewEmbedCache(cfg.CacheRows),
		arrivedC:   obs.GetCounter(p + "requests_total"),
		completedC: obs.GetCounter(p + "completed_total"),
		rejectedC:  obs.GetCounter(p + "rejected_total"),
		hitsC:      obs.GetCounter(p + "cache.hits_total"),
		missesC:    obs.GetCounter(p + "cache.misses_total"),
		depthG:     obs.GetGauge(p + "queue_depth_max"),
		batchH:     obs.GetHistogram(p+"batch_size", batchSizeBuckets),
		latencyH:   obs.GetHistogram(p+"latency_nanos", obs.DurationBuckets()),
	}
}

// inflightBatch is a dispatched micro-batch awaiting its completion event.
// Row i of emb belongs to reqs[i].
type inflightBatch struct {
	done float64
	seq  int // dispatch order, deterministic completion tie-break
	reqs []Request
	emb  *tensor.Tensor
}

type completionHeap []*inflightBatch

func (h completionHeap) Len() int { return len(h) }
func (h completionHeap) Less(i, j int) bool {
	if h[i].done != h[j].done {
		return h[i].done < h[j].done
	}
	return h[i].seq < h[j].seq
}
func (h completionHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *completionHeap) Push(x any)   { *h = append(*h, x.(*inflightBatch)) }
func (h *completionHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Run drives the endpoint over every arrival src produces and returns the
// measured stats. The loop is a discrete-event simulation: completions,
// arrivals, and batch formations fire in simulated-time order (ties resolve
// completion, then arrival, then formation), so the outcome is a pure
// function of (weights, source, policy) — reruns are bit-identical.
func (s *Server) Run(src Source) (Stats, error) {
	var (
		comps     completionHeap
		latencies []float64
		st        = Stats{Endpoint: s.cfg.Endpoint}
		seq       int
	)
	record := func(lat float64) {
		latencies = append(latencies, lat)
		s.latencyH.Observe(int64(lat * 1e9))
		st.Completed++
		s.completedC.Inc()
	}

	const (
		evNone = iota
		evCompletion
		evArrival
		evFormation
	)
	for {
		ev, t := evNone, math.Inf(1)
		if len(comps) > 0 {
			ev, t = evCompletion, comps[0].done
		}
		if at, ok := src.Peek(); ok && at < t {
			ev, t = evArrival, at
		}
		if ft, ok := s.formationTime(); ok && ft < t {
			ev, t = evFormation, ft
		}
		if ev == evNone {
			break
		}
		if t > st.Makespan {
			st.Makespan = t
		}
		switch ev {
		case evCompletion:
			c := heap.Pop(&comps).(*inflightBatch)
			for i, req := range c.reqs {
				record(c.done - req.Time)
				s.cache.Put(req.Item, c.emb.Row(i))
				src.Done(req, c.done)
			}
		case evArrival:
			req := src.Pop()
			st.Arrived++
			s.arrivedC.Inc()
			if row := s.cache.Get(req.Item); row != nil {
				// Hit: served at arrival, no queue, no device time.
				s.hitsC.Inc()
				record(0)
				src.Done(req, req.Time)
				continue
			}
			if s.cache != nil {
				s.missesC.Inc()
			}
			if err := s.queue.Push(req); err != nil {
				st.Rejected++
				s.rejectedC.Inc()
				src.Done(req, req.Time)
			}
		case evFormation:
			k := s.cfg.MaxBatch
			if n := s.queue.Len(); n < k {
				k = n
			}
			reqs := s.queue.Take(k)
			ids := make([]int32, k)
			for i, r := range reqs {
				ids[i] = r.Item
			}
			rank := s.earliestFree()
			emb, dev, err := s.replicas[rank].Serve(ids)
			if err != nil {
				return st, err
			}
			st.Batches++
			s.batchH.Observe(int64(k))
			st.DeviceSeconds += dev
			s.freeAt[rank] = t + dev
			heap.Push(&comps, &inflightBatch{done: t + dev, seq: seq, reqs: reqs, emb: emb})
			seq++
		}
	}

	st.CacheHits = s.cache.Hits()
	st.CacheMisses = s.cache.Misses()
	st.MaxQueueDepth = s.queue.MaxDepth()
	s.depthG.SetMax(int64(st.MaxQueueDepth))
	if st.Batches > 0 {
		st.MeanBatch = float64(st.Completed-st.CacheHits) / float64(st.Batches)
	}
	if st.Completed > 0 {
		st.MeanDeviceSeconds = st.DeviceSeconds / float64(st.Completed)
		var sum float64
		for _, l := range latencies {
			sum += l
		}
		st.MeanLatency = sum / float64(len(latencies))
		sort.Float64s(latencies)
		st.P50 = exactQuantile(latencies, 0.50)
		st.P95 = exactQuantile(latencies, 0.95)
		st.P99 = exactQuantile(latencies, 0.99)
	}
	if st.Makespan > 0 {
		st.QPS = float64(st.Completed) / st.Makespan
	}
	return st, nil
}

// formationTime returns the simulated time the next micro-batch should
// dispatch: never before a replica is free, and no earlier than the batch
// trigger — the MaxBatch-th oldest arrival when the queue can fill a batch,
// or the oldest arrival plus the batching window otherwise. Arrivals that
// land before the returned time are processed first (the loop recomputes),
// so a filling batch pulls its own trigger earlier.
func (s *Server) formationTime() (float64, bool) {
	n := s.queue.Len()
	if n == 0 {
		return 0, false
	}
	var t float64
	if n >= s.cfg.MaxBatch {
		t = s.queue.Peek(s.cfg.MaxBatch - 1).Time
	} else {
		t = s.queue.Peek(0).Time + s.cfg.MaxWaitSeconds
	}
	if free := s.freeAt[s.earliestFree()]; free > t {
		t = free
	}
	return t, true
}

// earliestFree returns the rank of the replica free soonest (lowest rank on
// ties — the deterministic scheduling order).
func (s *Server) earliestFree() int {
	best := 0
	for r := 1; r < len(s.freeAt); r++ {
		if s.freeAt[r] < s.freeAt[best] {
			best = r
		}
	}
	return best
}

// exactQuantile returns the nearest-rank q-quantile of sorted values.
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
