package serve

// EmbedCache is an LRU cache of finished item embeddings, keyed by item id.
// Serving embeddings are pure functions of (frozen weights, item id) — the
// batch-invariance contract of models.Servable — so a cached row is bitwise
// the row recomputation would produce and the cache is semantically
// transparent: it only removes sampling + gather + forward device time for
// repeated items.
//
// The cache is single-owner (the server event loop) and needs no locking;
// hit/miss counts are kept here and surfaced through Server stats/metrics.
type EmbedCache struct {
	cap     int
	entries map[int32]*cacheEntry
	// Doubly-linked LRU list; head.next is most recent, tail.prev oldest.
	head, tail *cacheEntry

	hits, misses int64
}

type cacheEntry struct {
	id         int32
	row        []float32
	prev, next *cacheEntry
}

// NewEmbedCache returns an LRU cache holding up to capacity embedding rows;
// capacity <= 0 returns nil, and a nil cache misses every lookup (serving
// with caching disabled).
func NewEmbedCache(capacity int) *EmbedCache {
	if capacity <= 0 {
		return nil
	}
	c := &EmbedCache{cap: capacity, entries: make(map[int32]*cacheEntry, capacity)}
	c.head = &cacheEntry{}
	c.tail = &cacheEntry{}
	c.head.next = c.tail
	c.tail.prev = c.head
	return c
}

// Get returns the cached embedding row for id, marking it most recently
// used, or nil on a miss. The returned slice is owned by the cache; callers
// must not mutate it.
func (c *EmbedCache) Get(id int32) []float32 {
	if c == nil {
		return nil
	}
	e, ok := c.entries[id]
	if !ok {
		c.misses++
		return nil
	}
	c.hits++
	c.unlink(e)
	c.pushFront(e)
	return e.row
}

// Put stores a copy of row for id, evicting the least recently used entry
// when full. Re-putting an existing id refreshes its recency (the row is
// identical by the purity contract, so the old copy is kept).
func (c *EmbedCache) Put(id int32, row []float32) {
	if c == nil {
		return
	}
	if e, ok := c.entries[id]; ok {
		c.unlink(e)
		c.pushFront(e)
		return
	}
	if len(c.entries) >= c.cap {
		oldest := c.tail.prev
		c.unlink(oldest)
		delete(c.entries, oldest.id)
	}
	e := &cacheEntry{id: id, row: append([]float32(nil), row...)}
	c.entries[id] = e
	c.pushFront(e)
}

// Len returns the number of cached rows.
func (c *EmbedCache) Len() int {
	if c == nil {
		return 0
	}
	return len(c.entries)
}

// Hits returns the number of Get calls that found their id.
func (c *EmbedCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits
}

// Misses returns the number of Get calls that did not.
func (c *EmbedCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses
}

func (c *EmbedCache) unlink(e *cacheEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (c *EmbedCache) pushFront(e *cacheEntry) {
	e.prev = c.head
	e.next = c.head.next
	c.head.next.prev = e
	c.head.next = e
}
