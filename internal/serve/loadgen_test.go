package serve

import (
	"reflect"
	"sort"
	"testing"
)

func TestOpenArrivalsDeterministicAndSorted(t *testing.T) {
	cfg := LoadConfig{Seed: 9, QPS: 500, Duration: 0.5, Items: 100}
	a := OpenArrivals(cfg)
	b := OpenArrivals(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i].Time < a[j].Time }) {
		t.Fatal("arrivals out of order")
	}
	for _, r := range a {
		if r.Time < 0 || r.Time >= cfg.Duration {
			t.Fatalf("arrival %v outside horizon", r.Time)
		}
		if r.Item < 0 || int(r.Item) >= cfg.Items {
			t.Fatalf("item %d outside space", r.Item)
		}
	}
	// Poisson at 500 QPS over 0.5 s: ~250 requests, allow wide slack.
	if len(a) < 150 || len(a) > 400 {
		t.Fatalf("arrival count %d implausible for rate", len(a))
	}
	// Zipf popularity: the hottest item should dominate a uniform share.
	counts := map[int32]int{}
	for _, r := range a {
		counts[r.Item]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	if maxCount < 3*len(a)/cfg.Items {
		t.Fatalf("no popularity skew: max item count %d of %d", maxCount, len(a))
	}
}

func TestOpenArrivalsBursty(t *testing.T) {
	base := LoadConfig{Seed: 3, QPS: 400, Duration: 1, Items: 50}
	burst := base
	burst.Burst = &BurstConfig{Period: 0.2, Duty: 0.25, Factor: 4}
	reqs := OpenArrivals(burst)
	if len(reqs) == 0 {
		t.Fatal("empty bursty trace")
	}
	// Count arrivals inside vs outside the duty window, normalized by the
	// time spent in each: the burst rate must clearly exceed the off rate.
	var in, out int
	for _, r := range reqs {
		phase := r.Time - float64(int(r.Time/0.2))*0.2
		if phase < 0.25*0.2 {
			in++
		} else {
			out++
		}
	}
	inRate := float64(in) / 0.25
	outRate := float64(out) / 0.75
	if inRate < 4*outRate {
		t.Fatalf("burst rate %.0f vs off rate %.0f: modulation too weak", inRate, outRate)
	}
}

func TestClosedSourceOneOutstandingPerUser(t *testing.T) {
	src := NewClosedSource(ClosedConfig{Seed: 4, Users: 3, ThinkSeconds: 0.01, Duration: 1, Items: 10})
	inflight := map[int]bool{}
	issued := 0
	lastT := -1.0
	for {
		tPeek, ok := src.Peek()
		if !ok {
			break
		}
		if tPeek < lastT {
			t.Fatalf("arrival at %v before %v", tPeek, lastT)
		}
		lastT = tPeek
		r := src.Pop()
		if inflight[r.User] {
			t.Fatalf("user %d issued while a request was outstanding", r.User)
		}
		inflight[r.User] = true
		issued++
		// Respond immediately with a fixed service time.
		inflight[r.User] = false
		src.Done(r, r.Time+0.002)
	}
	if issued < 100 {
		t.Fatalf("only %d requests over 1s with 10ms think", issued)
	}
}

func TestClosedSourceHorizonRetiresUsers(t *testing.T) {
	src := NewClosedSource(ClosedConfig{Seed: 4, Users: 2, ThinkSeconds: 0.01, Duration: 0.05, Items: 5})
	for {
		_, ok := src.Peek()
		if !ok {
			break
		}
		r := src.Pop()
		if r.Time >= 0.05 {
			t.Fatalf("arrival at %v past the horizon", r.Time)
		}
		src.Done(r, r.Time)
	}
}
