package serve

import "testing"

func TestEmbedCacheLRU(t *testing.T) {
	c := NewEmbedCache(2)
	c.Put(1, []float32{1})
	c.Put(2, []float32{2})
	if got := c.Get(1); got == nil || got[0] != 1 {
		t.Fatalf("Get(1) = %v", got)
	}
	// 1 is now most recent; inserting 3 evicts 2.
	c.Put(3, []float32{3})
	if c.Get(2) != nil {
		t.Fatal("2 not evicted as LRU")
	}
	if c.Get(1) == nil || c.Get(3) == nil {
		t.Fatal("recent entries evicted")
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Hits() != 3 || c.Misses() != 1 {
		t.Fatalf("hits %d misses %d, want 3/1", c.Hits(), c.Misses())
	}
}

func TestEmbedCachePutCopies(t *testing.T) {
	c := NewEmbedCache(4)
	row := []float32{7}
	c.Put(1, row)
	row[0] = 99
	if got := c.Get(1); got[0] != 7 {
		t.Fatalf("cache aliased caller's slice: %v", got)
	}
	// Re-putting refreshes recency without replacing the stored row.
	c.Put(2, []float32{2})
	c.Put(1, []float32{8})
	if got := c.Get(1); got[0] != 7 {
		t.Fatalf("re-put replaced row: %v (purity contract makes them equal anyway)", got)
	}
}

func TestEmbedCacheDisabled(t *testing.T) {
	c := NewEmbedCache(0)
	if c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	// All nil-receiver operations are safe no-ops.
	c.Put(1, []float32{1})
	if c.Get(1) != nil || c.Len() != 0 || c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("nil cache not inert")
	}
}

func TestAdmissionQueueFIFO(t *testing.T) {
	q := NewAdmissionQueue(0) // unbounded
	for i := 0; i < 5; i++ {
		if err := q.Push(Request{Seq: i}); err != nil {
			t.Fatal(err)
		}
	}
	got := q.Take(3)
	if len(got) != 3 || got[0].Seq != 0 || got[2].Seq != 2 {
		t.Fatalf("Take(3) = %+v", got)
	}
	if q.Len() != 2 || q.Peek(0).Seq != 3 {
		t.Fatalf("after Take: len %d head %+v", q.Len(), q.Peek(0))
	}
	if q.MaxDepth() != 5 {
		t.Fatalf("MaxDepth = %d, want 5", q.MaxDepth())
	}
	if q.Rejected() != 0 {
		t.Fatalf("Rejected = %d, want 0", q.Rejected())
	}
}
