package serve

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// TraceError is a typed arrival-trace parse failure, carrying the 1-based
// line it occurred on. Malformed traces always surface as *TraceError (or
// an I/O error from the reader) — never a panic — so a fuzzer or an
// operator feeding a bad file gets a diagnosis, not a crash.
type TraceError struct {
	Line int
	Msg  string
}

func (e *TraceError) Error() string {
	return fmt.Sprintf("serve: arrival trace line %d: %s", e.Line, e.Msg)
}

// ParseArrivalTrace reads a textual arrival trace: one request per line as
// "<timestamp_us> <item>", both non-negative integers, timestamps strictly
// increasing. Blank lines and '#' comments are skipped. The returned
// requests carry times in seconds and User -1 (open-loop).
func ParseArrivalTrace(r io.Reader) ([]Request, error) {
	sc := bufio.NewScanner(r)
	var reqs []Request
	lastUS := int64(-1)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("want \"<timestamp_us> <item>\", got %d fields", len(fields))}
		}
		us, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("bad timestamp %q", fields[0])}
		}
		if us < 0 {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("negative timestamp %d", us)}
		}
		if us == lastUS {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("duplicate timestamp %dus", us)}
		}
		if us < lastUS {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("timestamp %dus out of order (after %dus)", us, lastUS)}
		}
		item, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("bad item id %q", fields[1])}
		}
		if item < 0 {
			return nil, &TraceError{Line: line, Msg: fmt.Sprintf("negative item id %d", item)}
		}
		lastUS = us
		reqs = append(reqs, Request{Time: float64(us) / 1e6, Item: int32(item), User: -1, Seq: len(reqs)})
	}
	if err := sc.Err(); err != nil {
		return nil, &TraceError{Line: line + 1, Msg: err.Error()}
	}
	return reqs, nil
}

// FormatArrivalTrace writes reqs in ParseArrivalTrace's format (times
// rounded to whole microseconds).
func FormatArrivalTrace(w io.Writer, reqs []Request) error {
	for _, r := range reqs {
		if _, err := fmt.Fprintf(w, "%d %d\n", int64(math.Round(r.Time*1e6)), r.Item); err != nil {
			return fmt.Errorf("serve: writing arrival trace: %w", err)
		}
	}
	return nil
}
