package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestParseArrivalTrace(t *testing.T) {
	in := `# comment
100 5

250 7
1000000 0
`
	reqs, err := ParseArrivalTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 3 {
		t.Fatalf("parsed %d requests, want 3", len(reqs))
	}
	if reqs[0].Time != 100e-6 || reqs[0].Item != 5 {
		t.Fatalf("first request %+v", reqs[0])
	}
	if reqs[2].Time != 1.0 {
		t.Fatalf("third time %v, want 1s", reqs[2].Time)
	}
	if reqs[1].User != -1 || reqs[1].Seq != 1 {
		t.Fatalf("second request %+v", reqs[1])
	}
}

func TestParseArrivalTraceErrors(t *testing.T) {
	cases := map[string]string{
		"out of order":        "100 1\n50 2\n",
		"duplicate timestamp": "100 1\n100 2\n",
		"negative timestamp":  "-5 1\n",
		"bad timestamp":       "abc 1\n",
		"bad item":            "100 xyz\n",
		"negative item":       "100 -3\n",
		"field count":         "100 1 2\n",
		"item overflow":       "100 99999999999\n",
	}
	for name, in := range cases {
		_, err := ParseArrivalTrace(strings.NewReader(in))
		var te *TraceError
		if !errors.As(err, &te) {
			t.Errorf("%s: err = %v, want *TraceError", name, err)
			continue
		}
		if te.Line == 0 {
			t.Errorf("%s: no line number in %v", name, te)
		}
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	reqs := OpenArrivals(LoadConfig{Seed: 2, QPS: 1000, Duration: 0.05, Items: 20})
	var buf bytes.Buffer
	if err := FormatArrivalTrace(&buf, reqs); err != nil {
		t.Fatal(err)
	}
	back, err := ParseArrivalTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(reqs) {
		t.Fatalf("round trip %d -> %d requests", len(reqs), len(back))
	}
	for i := range back {
		if back[i].Item != reqs[i].Item {
			t.Fatalf("request %d item %d -> %d", i, reqs[i].Item, back[i].Item)
		}
	}
}
