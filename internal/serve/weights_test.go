package serve

import (
	"bytes"
	"math/rand"
	"testing"

	"gnnmark/internal/autograd"
	"gnnmark/internal/nn"
	"gnnmark/internal/ops"
	"gnnmark/internal/tensor"
)

func testParams(seed int64) []*autograd.Param {
	rng := rand.New(rand.NewSource(seed))
	l1 := nn.NewLinear(rng, "m.l1", 3, 4, true)
	l2 := nn.NewLinear(rng, "m.l2", 4, 2, false)
	return nn.CollectParams(l1, l2)
}

func TestFreezeFromTrainingCheckpoint(t *testing.T) {
	params := testParams(1)
	opt := nn.NewAdam(ops.New(nil), params, 1e-3)
	// Step once so the checkpoint carries nonzero optimizer state Freeze
	// must skip over.
	for _, p := range params {
		p.Grad = p.Value.Clone()
	}
	opt.Step()

	var buf bytes.Buffer
	if err := nn.SaveTraining(&buf, opt); err != nil {
		t.Fatal(err)
	}
	w, err := Freeze(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != len(params) {
		t.Fatalf("frozen %d params, want %d", w.Len(), len(params))
	}

	// Load into a differently-initialized twin: bitwise restore.
	twin := testParams(2)
	if err := w.LoadInto(twin); err != nil {
		t.Fatal(err)
	}
	for i, p := range params {
		for j, v := range p.Value.Data() {
			if twin[i].Value.Data()[j] != v {
				t.Fatalf("%s element %d not bitwise-restored", p.Name, j)
			}
		}
	}
}

func TestFreezeParamsIsDeepCopy(t *testing.T) {
	params := testParams(3)
	w := FreezeParams(params)
	before := params[0].Value.Data()[0]
	params[0].Value.Data()[0] = before + 100

	twin := testParams(4)
	if err := w.LoadInto(twin); err != nil {
		t.Fatal(err)
	}
	if twin[0].Value.Data()[0] != before {
		t.Fatal("snapshot aliased live training parameters")
	}
	// One snapshot initializes many replicas identically.
	twin2 := testParams(5)
	if err := w.LoadInto(twin2); err != nil {
		t.Fatal(err)
	}
	if twin2[0].Value.Data()[0] != before {
		t.Fatal("second LoadInto diverged")
	}
}

func TestLoadIntoMismatches(t *testing.T) {
	w := FreezeParams(testParams(6))
	missing := []*autograd.Param{autograd.NewParam("nope", tensor.New(2, 2))}
	if err := w.LoadInto(missing); err == nil {
		t.Fatal("unknown parameter name accepted")
	}
	wrongShape := []*autograd.Param{autograd.NewParam("m.l1.w", tensor.New(1))}
	if err := w.LoadInto(wrongShape); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}
