// Package serve is the inference serving plane: a forward-only execution
// mode layered on the simulated-GPU engine stack, characterizing the
// latency-bound, concurrent, cache-sensitive behavior that training
// benchmarks never exercise (gSuite's argument for GNN inference as its own
// benchmark problem).
//
// The plane is built from five pieces:
//
//	freeze  — Weights: a read-only parameter snapshot (from nn.SaveTraining
//	          or live params) shared across replicas.
//	queue   — AdmissionQueue: bounded FIFO with typed overload rejection.
//	batcher — Server: dynamic micro-batching under a max-batch/max-wait
//	          policy, dispatching to the earliest-free replica.
//	engine  — Replica: a goroutine owning one model instance on its own
//	          simulated device; request cost is the device-clock delta of
//	          the forward pass.
//	cache   — EmbedCache: LRU over finished item embeddings, hit at
//	          admission (skipping queue and compute entirely).
//
// Time is simulated throughout: arrivals, batching deadlines, and
// completions advance a discrete-event clock, and service times come from
// the replicas' gpu.Device kernel model. Everything is a pure function of
// (frozen weights, request trace, policy), so a serving benchmark is
// bit-reproducible run to run — the property gnnmark serve-bench's golden
// output rests on.
package serve

import (
	"fmt"

	"gnnmark/internal/tensor"
)

// Model is the forward-only surface a servable workload exposes
// (models.Servable satisfies it structurally; serve does not import
// models). ServeEmbed must be deterministic per id and batch-invariant —
// a request's row is bitwise identical alone or micro-batched — which is
// what makes batching and caching transparent.
type Model interface {
	ServeEmbed(ids []int32) *tensor.Tensor
	NumItems() int
	EmbedDim() int
}

// Request is one inference query: embed item Item, arriving at sim time
// Time (seconds). User identifies the closed-loop issuer (-1 for open
// arrivals); Seq is a global arrival sequence number used only for
// deterministic tie-breaks.
type Request struct {
	Time float64
	Item int32
	User int
	Seq  int
}

// Replica owns one model instance on its own engine/device and serves
// micro-batches sequentially on a dedicated goroutine. The event loop
// dispatches a batch and waits for its device cost — sim-time parallelism
// across replicas is modeled by their independent freeAt clocks, while the
// goroutine hop keeps the -race detector watching the handoff.
type Replica struct {
	rank  int
	model Model
	clock func() float64
	in    chan replicaCall
}

type replicaCall struct {
	ids   []int32
	reply chan replicaResult
}

type replicaResult struct {
	emb    *tensor.Tensor
	device float64
	err    error
}

// NewReplica wraps model (already loaded with frozen weights) and its
// device-clock reader, and starts the serving goroutine. rank breaks
// scheduling ties deterministically.
func NewReplica(rank int, model Model, clock func() float64) *Replica {
	r := &Replica{rank: rank, model: model, clock: clock, in: make(chan replicaCall)}
	go r.run()
	return r
}

// Rank returns the replica's scheduling rank.
func (r *Replica) Rank() int { return r.rank }

func (r *Replica) run() {
	for call := range r.in {
		call.reply <- r.serveOne(call.ids)
	}
}

// serveOne runs one micro-batch, converting a model panic (corrupt weights,
// out-of-range id) into an error so one bad request cannot kill the plane.
func (r *Replica) serveOne(ids []int32) (res replicaResult) {
	defer func() {
		if p := recover(); p != nil {
			res = replicaResult{err: fmt.Errorf("serve: replica %d panicked: %v", r.rank, p)}
		}
	}()
	before := r.clock()
	emb := r.model.ServeEmbed(ids)
	return replicaResult{emb: emb, device: r.clock() - before}
}

// Serve embeds ids on the replica's goroutine, returning the embedding rows
// and the simulated device seconds the batch consumed.
func (r *Replica) Serve(ids []int32) (*tensor.Tensor, float64, error) {
	reply := make(chan replicaResult)
	r.in <- replicaCall{ids: ids, reply: reply}
	res := <-reply
	return res.emb, res.device, res.err
}

// Close stops the replica's goroutine. The replica must be idle.
func (r *Replica) Close() { close(r.in) }
