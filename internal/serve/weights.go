package serve

import (
	"fmt"
	"io"

	"gnnmark/internal/autograd"
	"gnnmark/internal/nn"
)

// Weights is a frozen model snapshot: parameter values only — no tape, no
// optimizer state — held immutably and shared read-only across every
// serving replica. Replicas each own a model instance on their own device;
// LoadInto copies the frozen values into a replica's parameters at
// construction time, after which the snapshot is never written.
type Weights struct {
	params []nn.SavedParam
	byName map[string]int
}

// Freeze reads a training checkpoint stream (nn.SaveTraining format) and
// returns its weights, discarding the optimizer state — the serving plane
// restores inference behavior, not training progress.
func Freeze(r io.Reader) (*Weights, error) {
	params, err := nn.DecodeTrainingParams(r)
	if err != nil {
		return nil, fmt.Errorf("serve: freezing checkpoint: %w", err)
	}
	return newWeights(params), nil
}

// FreezeParams snapshots live training parameters directly (deep copy), for
// serving a model that was just trained in-process without a checkpoint
// round-trip.
func FreezeParams(params []*autograd.Param) *Weights {
	saved := make([]nn.SavedParam, len(params))
	for i, p := range params {
		saved[i] = nn.SavedParam{
			Name:  p.Name,
			Shape: append([]int(nil), p.Value.Shape()...),
			Data:  append([]float32(nil), p.Value.Data()...),
		}
	}
	return newWeights(saved)
}

func newWeights(params []nn.SavedParam) *Weights {
	w := &Weights{params: params, byName: make(map[string]int, len(params))}
	for i, p := range params {
		w.byName[p.Name] = i
	}
	return w
}

// Len returns the number of frozen parameters.
func (w *Weights) Len() int { return len(w.params) }

// LoadInto copies the frozen values into params, matching by name; every
// destination parameter must exist in the snapshot with the same shape.
// The snapshot itself is not mutated, so one Weights can initialize any
// number of replicas.
func (w *Weights) LoadInto(params []*autograd.Param) error {
	for _, p := range params {
		i, ok := w.byName[p.Name]
		if !ok {
			return fmt.Errorf("serve: frozen snapshot has no parameter %q", p.Name)
		}
		s := w.params[i]
		if s.Size() != p.Value.Size() {
			return fmt.Errorf("serve: parameter %q has %d frozen elements, model expects %d",
				p.Name, s.Size(), p.Value.Size())
		}
		copy(p.Value.Data(), s.Data)
	}
	return nil
}
