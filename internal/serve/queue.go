package serve

import "fmt"

// OverloadError is the typed admission rejection: the endpoint's queue was
// at capacity when the request arrived. Callers (and the closed-loop load
// generator) distinguish it from hard failures — an overloaded endpoint is
// healthy, just saturated.
type OverloadError struct {
	Depth int // queued requests at rejection time
	Cap   int // configured queue capacity
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("serve: queue overloaded (%d/%d)", e.Depth, e.Cap)
}

// AdmissionQueue is the bounded FIFO between arrival and batch formation.
// Cap <= 0 means unbounded. The queue is single-owner (the server event
// loop); it tracks its own high-watermark for the queue-depth metric.
type AdmissionQueue struct {
	cap      int
	reqs     []Request
	maxDepth int
	rejected int64
}

// NewAdmissionQueue returns a queue admitting at most capacity waiting
// requests (<= 0 for unbounded).
func NewAdmissionQueue(capacity int) *AdmissionQueue {
	return &AdmissionQueue{cap: capacity}
}

// Push admits r, or returns *OverloadError when the queue is full.
func (q *AdmissionQueue) Push(r Request) error {
	if q.cap > 0 && len(q.reqs) >= q.cap {
		q.rejected++
		return &OverloadError{Depth: len(q.reqs), Cap: q.cap}
	}
	q.reqs = append(q.reqs, r)
	if len(q.reqs) > q.maxDepth {
		q.maxDepth = len(q.reqs)
	}
	return nil
}

// Len returns the number of waiting requests.
func (q *AdmissionQueue) Len() int { return len(q.reqs) }

// Peek returns the i-th oldest waiting request (0 = head).
func (q *AdmissionQueue) Peek(i int) Request { return q.reqs[i] }

// Take removes and returns the n oldest waiting requests.
func (q *AdmissionQueue) Take(n int) []Request {
	out := append([]Request(nil), q.reqs[:n]...)
	rest := copy(q.reqs, q.reqs[n:])
	q.reqs = q.reqs[:rest]
	return out
}

// MaxDepth returns the high-watermark of waiting requests.
func (q *AdmissionQueue) MaxDepth() int { return q.maxDepth }

// Rejected returns the number of overload rejections.
func (q *AdmissionQueue) Rejected() int64 { return q.rejected }
