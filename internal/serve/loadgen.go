package serve

import (
	"container/heap"
	"math/rand"
	"sort"
)

// Load generation: deterministic arrival processes for the serving plane.
// Open traffic (Poisson, optionally bursty) is pregenerated as a sorted
// request slice; closed traffic models a fixed user population where each
// user waits for its response (or rejection) and thinks before issuing
// again — the canonical closed-loop generator whose offered load reacts to
// the endpoint's own latency. Both are pure functions of their seeds.

// LoadConfig describes an open arrival process.
type LoadConfig struct {
	Seed     int64
	QPS      float64 // mean arrival rate (requests per simulated second)
	Duration float64 // horizon in simulated seconds
	Items    int     // item-id space [0, Items)
	// ZipfS/ZipfV shape the item-popularity distribution (s > 1, v >= 1;
	// defaults 1.2/1). Skewed popularity is what gives an embedding cache
	// its hit rate.
	ZipfS, ZipfV float64
	// Burst, when non-nil, modulates the rate into on/off phases.
	Burst *BurstConfig
}

// BurstConfig modulates an open process into bursts: within every Period,
// the first Duty fraction arrives at QPS*Factor, the rest at QPS/Factor —
// the bursty trace shape of production recommendation frontends.
type BurstConfig struct {
	Period float64 // seconds per cycle
	Duty   float64 // fraction of the cycle at the high rate (0..1)
	Factor float64 // rate multiplier during the burst (>= 1)
}

func (c *LoadConfig) defaults() {
	if c.ZipfS == 0 {
		c.ZipfS = 1.2
	}
	if c.ZipfV == 0 {
		c.ZipfV = 1
	}
}

// OpenArrivals generates the open arrival trace for cfg: exponential
// inter-arrival gaps at the (possibly burst-modulated) rate, Zipf item
// popularity, timestamps strictly within [0, Duration).
func OpenArrivals(cfg LoadConfig) []Request {
	cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Items-1))
	var reqs []Request
	t := 0.0
	for {
		rate := cfg.QPS
		if b := cfg.Burst; b != nil && b.Period > 0 {
			if phase := t - float64(int(t/b.Period))*b.Period; phase < b.Duty*b.Period {
				rate = cfg.QPS * b.Factor
			} else if b.Factor > 0 {
				rate = cfg.QPS / b.Factor
			}
		}
		if rate <= 0 {
			break
		}
		t += rng.ExpFloat64() / rate
		if t >= cfg.Duration {
			break
		}
		reqs = append(reqs, Request{Time: t, Item: int32(zipf.Uint64()), User: -1, Seq: len(reqs)})
	}
	return reqs
}

// SliceSource replays a fixed request slice in time order (open-loop: Done
// is ignored).
type SliceSource struct {
	reqs []Request
	i    int
}

// NewSliceSource sorts reqs by time (stable, renumbering Seq) and returns a
// source replaying them.
func NewSliceSource(reqs []Request) *SliceSource {
	sorted := append([]Request(nil), reqs...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time < sorted[j].Time })
	for i := range sorted {
		sorted[i].Seq = i
	}
	return &SliceSource{reqs: sorted}
}

// Peek implements Source.
func (s *SliceSource) Peek() (float64, bool) {
	if s.i >= len(s.reqs) {
		return 0, false
	}
	return s.reqs[s.i].Time, true
}

// Pop implements Source.
func (s *SliceSource) Pop() Request {
	r := s.reqs[s.i]
	s.i++
	return r
}

// Done implements Source (open-loop: no feedback).
func (s *SliceSource) Done(Request, float64) {}

// ClosedConfig describes a closed-loop user population.
type ClosedConfig struct {
	Seed         int64
	Users        int     // concurrent users
	ThinkSeconds float64 // mean exponential think time between requests
	Duration     float64 // users stop issuing at this horizon
	Items        int
	ZipfS, ZipfV float64
}

// ClosedSource issues one outstanding request per user: a user's next
// request is scheduled only when the server reports the previous one done
// (completed, cache-hit, or rejected), after an exponential think time.
// Per-user RNGs make the trace independent of interleaving: a pure function
// of (seed, the server's response times).
type ClosedSource struct {
	cfg   ClosedConfig
	rngs  []*rand.Rand
	zipfs []*rand.Zipf
	h     userHeap
	seq   int
}

type userArrival struct {
	t    float64
	user int
	item int32
}

type userHeap []userArrival

func (h userHeap) Len() int { return len(h) }
func (h userHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].user < h[j].user
}
func (h userHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *userHeap) Push(x any)   { *h = append(*h, x.(userArrival)) }
func (h *userHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// NewClosedSource builds the population with every user's first request
// staggered by one think time.
func NewClosedSource(cfg ClosedConfig) *ClosedSource {
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.2
	}
	if cfg.ZipfV == 0 {
		cfg.ZipfV = 1
	}
	s := &ClosedSource{cfg: cfg}
	for u := 0; u < cfg.Users; u++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(u)*7919))
		s.rngs = append(s.rngs, rng)
		s.zipfs = append(s.zipfs, rand.NewZipf(rng, cfg.ZipfS, cfg.ZipfV, uint64(cfg.Items-1)))
		t := rng.ExpFloat64() * cfg.ThinkSeconds
		if t < cfg.Duration {
			heap.Push(&s.h, userArrival{t: t, user: u, item: int32(s.zipfs[u].Uint64())})
		}
	}
	return s
}

// Peek implements Source.
func (s *ClosedSource) Peek() (float64, bool) {
	if s.h.Len() == 0 {
		return 0, false
	}
	return s.h[0].t, true
}

// Pop implements Source.
func (s *ClosedSource) Pop() Request {
	a := heap.Pop(&s.h).(userArrival)
	r := Request{Time: a.t, Item: a.item, User: a.user, Seq: s.seq}
	s.seq++
	return r
}

// Done implements Source: the issuing user thinks, then issues its next
// request — unless the horizon has passed, in which case the user retires.
func (s *ClosedSource) Done(r Request, at float64) {
	if r.User < 0 || r.User >= len(s.rngs) {
		return
	}
	next := at + s.rngs[r.User].ExpFloat64()*s.cfg.ThinkSeconds
	if next >= s.cfg.Duration {
		return
	}
	heap.Push(&s.h, userArrival{t: next, user: r.User, item: int32(s.zipfs[r.User].Uint64())})
}
