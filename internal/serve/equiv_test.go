package serve

import (
	"bytes"
	"testing"

	"gnnmark/internal/backend"
	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/nn"
	"gnnmark/internal/ops"
	"gnnmark/internal/tensor"
)

// servable unifies the workloads under test: Servable for the forward pass,
// Checkpointable for SaveTraining.
type servable interface {
	models.Servable
	Optimizer() nn.Optimizer
}

// buildServable constructs a workload instance on its own fresh device and
// backend; identical (name, seed) arguments build identical models.
func buildServable(name string, be backend.Backend, seed int64) (servable, *ops.Engine) {
	cfg := gpu.V100()
	cfg.MaxSampledWarps = 512
	e := ops.NewWith(gpu.New(cfg), be)
	env := models.NewEnv(e, seed)
	switch name {
	case "PSAGE":
		return models.NewPSAGE(env, datasets.MovieLens(env.RNG),
			models.PSAGEConfig{Hidden: 16, BatchSize: 8, Batches: 2}), e
	case "ARGA":
		return models.NewARGA(env, datasets.NewCitation(env.RNG, "cora"),
			models.ARGAConfig{Hidden: 16, Embed: 8}), e
	}
	panic("unknown servable " + name)
}

func tensorsEqual(a, b *tensor.Tensor) bool {
	if a.Size() != b.Size() {
		return false
	}
	for i, v := range a.Data() {
		if b.Data()[i] != v {
			return false
		}
	}
	return true
}

// TestFrozenForwardMatchesTraining is the ISSUE equivalence claim: freezing
// a trained model through the checkpoint stream and restoring into a fresh
// replica yields a forward pass bitwise identical to the live training
// engine's, on both backends — and micro-batched results match batch-of-1
// per request on the frozen engine too.
func TestFrozenForwardMatchesTraining(t *testing.T) {
	for _, model := range []string{"PSAGE", "ARGA"} {
		for _, beName := range []string{"serial", "parallel"} {
			t.Run(model+"/"+beName, func(t *testing.T) {
				be, err := backend.New(beName)
				if err != nil {
					t.Fatal(err)
				}
				live, _ := buildServable(model, be, 42)
				live.TrainEpoch() // move weights off their initialization

				var buf bytes.Buffer
				if err := nn.SaveTraining(&buf, live.Optimizer()); err != nil {
					t.Fatal(err)
				}
				w, err := Freeze(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				frozen, _ := buildServable(model, be, 42)
				if err := w.LoadInto(frozen.Params()); err != nil {
					t.Fatal(err)
				}

				ids := []int32{0, 3, 11, int32(live.NumItems() - 1)}
				liveOut := live.ServeEmbed(ids)
				frozenOut := frozen.ServeEmbed(ids)
				if !tensorsEqual(liveOut, frozenOut) {
					t.Fatal("frozen forward differs from training engine forward")
				}
				// Batch-of-1 on the frozen replica matches its row in the
				// micro-batch bitwise.
				for i, id := range ids {
					single := frozen.ServeEmbed([]int32{id})
					for j, v := range single.Row(0) {
						if frozenOut.Row(i)[j] != v {
							t.Fatalf("id %d: micro-batched row differs from batch-of-1", id)
						}
					}
				}
			})
		}
	}
}

// TestBackendsServeIdentically: the numerics-backend contract (bitwise
// identical results) extends to the serving forward pass.
func TestBackendsServeIdentically(t *testing.T) {
	serial, _ := buildServable("PSAGE", backend.NewSerial(), 7)
	parallel, _ := buildServable("PSAGE", backend.NewParallel(), 7)
	ids := []int32{1, 5, 9}
	if !tensorsEqual(serial.ServeEmbed(ids), parallel.ServeEmbed(ids)) {
		t.Fatal("serial and parallel backends served different embeddings")
	}
}

// newPSAGEReplicas builds n frozen-weight PSAGE replicas, each on its own
// device, all initialized from the same snapshot.
func newPSAGEReplicas(t *testing.T, n int, w *Weights) []*Replica {
	t.Helper()
	reps := make([]*Replica, n)
	for r := 0; r < n; r++ {
		m, e := buildServable("PSAGE", backend.NewSerial(), 42)
		if err := w.LoadInto(m.Params()); err != nil {
			t.Fatal(err)
		}
		reps[r] = NewReplica(r, m, e.SimClock)
	}
	return reps
}

// TestMicroBatchingDoublesQPS is the ISSUE acceptance claim: under the same
// saturating open load, micro-batching serves >= 2x the QPS of
// batch-size-1 at an equal-or-better p99 — amortizing per-batch kernel
// launches and copy latencies is the whole point of the batcher.
func TestMicroBatchingDoublesQPS(t *testing.T) {
	frozen, _ := buildServable("PSAGE", backend.NewSerial(), 42)
	w := FreezeParams(frozen.Params())

	// Calibrate the offered load to the measured batch-of-1 service time so
	// the test tracks the device model instead of hardcoding rates.
	_, d1, err := newPSAGEReplicas(t, 1, w)[0].Serve([]int32{1})
	if err != nil {
		t.Fatal(err)
	}
	rate := 4 / d1 // 4x a single replica's batch-1 capacity
	reqs := OpenArrivals(LoadConfig{Seed: 11, QPS: rate, Duration: 300 * d1, Items: frozen.NumItems()})

	run := func(maxBatch int) Stats {
		reps := newPSAGEReplicas(t, 1, w)
		defer closeReplicas(reps)
		s := New(Config{
			Endpoint:       "accept",
			MaxBatch:       maxBatch,
			MaxWaitSeconds: d1,
			QueueCap:       8,
		}, reps)
		st, err := s.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	single := run(1)
	batched := run(16)
	t.Logf("batch-1: qps %.0f p99 %.6fs rejected %d; batch-16: qps %.0f p99 %.6fs rejected %d",
		single.QPS, single.P99, single.Rejected, batched.QPS, batched.P99, batched.Rejected)
	if batched.QPS < 2*single.QPS {
		t.Fatalf("micro-batching yields %.0f qps vs %.0f: less than 2x", batched.QPS, single.QPS)
	}
	if batched.P99 > single.P99 {
		t.Fatalf("batched p99 %.6fs exceeds batch-1 p99 %.6fs", batched.P99, single.P99)
	}
}

// TestCacheReducesDeviceTime is the ISSUE acceptance claim for the
// embedding cache: on a Zipf-skewed trace it reports a nonzero hit rate and
// lowers the mean per-request device time.
func TestCacheReducesDeviceTime(t *testing.T) {
	frozen, _ := buildServable("PSAGE", backend.NewSerial(), 42)
	w := FreezeParams(frozen.Params())
	reqs := OpenArrivals(LoadConfig{Seed: 13, QPS: 2000, Duration: 0.1, Items: frozen.NumItems(), ZipfS: 1.5})

	run := func(cacheRows int) Stats {
		reps := newPSAGEReplicas(t, 1, w)
		defer closeReplicas(reps)
		s := New(Config{Endpoint: "cache", MaxBatch: 8, MaxWaitSeconds: 0.002, CacheRows: cacheRows}, reps)
		st, err := s.Run(NewSliceSource(reqs))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	cold := run(0)
	warm := run(256)
	t.Logf("cold mean device %.2fus; warm mean device %.2fus hit rate %.2f",
		cold.MeanDeviceSeconds*1e6, warm.MeanDeviceSeconds*1e6, warm.HitRate())
	if warm.CacheHits == 0 {
		t.Fatal("no cache hits on a Zipf trace")
	}
	if warm.MeanDeviceSeconds >= cold.MeanDeviceSeconds {
		t.Fatalf("cache did not reduce mean device time: %v vs %v",
			warm.MeanDeviceSeconds, cold.MeanDeviceSeconds)
	}
}
