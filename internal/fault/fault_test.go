package fault

import (
	"fmt"
	"reflect"
	"testing"
)

// TestSeverityTaxonomy: the classification is total (every event type maps
// to exactly one severity without panicking) and stable (the mapping is
// pinned, so a type cannot silently drift between fatal and degraded —
// elastic recovery branches on it).
func TestSeverityTaxonomy(t *testing.T) {
	want := map[EventType]Severity{
		XID:             Fatal,
		ECCDBE:          Fatal,
		ReplicaLoss:     Fatal,
		ThermalThrottle: Degraded,
		NVLinkDegrade:   Degraded,
		ECCSBE:          Info,
	}
	types := AllEventTypes()
	if len(types) != len(want) {
		t.Fatalf("taxonomy has %d event types, pin covers %d — update the pin AND the recovery logic", len(types), len(want))
	}
	for _, typ := range types {
		sev := Classify(typ) // must not panic: totality
		pinned, ok := want[typ]
		if !ok {
			t.Fatalf("event type %v missing from the severity pin", typ)
		}
		if sev != pinned {
			t.Fatalf("Classify(%v) = %v, pinned %v", typ, sev, pinned)
		}
		if sev != Info && sev != Degraded && sev != Fatal {
			t.Fatalf("Classify(%v) = %d: not one of info/degraded/fatal", typ, sev)
		}
		if ev := (Event{Type: typ}); ev.Severity() != sev {
			t.Fatalf("Event.Severity disagrees with Classify for %v", typ)
		}
	}
}

// TestSeverityClassificationStable: classification depends only on the
// type — not on the slot, timestamp, code, or factor the event carries.
func TestSeverityClassificationStable(t *testing.T) {
	for _, typ := range AllEventTypes() {
		base := Classify(typ)
		for i := 0; i < 50; i++ {
			ev := Event{
				Slot: i % 7, Type: typ, At: float64(i) * 0.37,
				Code: 31 + i, Factor: 1 + float64(i)/10,
			}
			if ev.Severity() != base {
				t.Fatalf("%v severity changed with payload: %v != %v", typ, ev.Severity(), base)
			}
		}
	}
}

// TestRandomSchedulePureFunction: identical (seed, config) inputs replay
// the schedule bitwise-identically; different seeds actually differ.
func TestRandomSchedulePureFunction(t *testing.T) {
	cfg := ChurnConfig{Slots: 8, Horizon: 2.0, Fatals: 3, Degraded: 5}
	for seed := int64(1); seed <= 20; seed++ {
		a := RandomSchedule(seed, cfg)
		b := RandomSchedule(seed, cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: schedule not reproducible:\n%v\nvs\n%v", seed, a, b)
		}
	}
	if reflect.DeepEqual(RandomSchedule(1, cfg), RandomSchedule(2, cfg)) {
		t.Fatal("seeds 1 and 2 drew identical schedules — RNG not threaded through")
	}
}

// TestRandomScheduleInvariants: fatal draws hit distinct slots and never
// exhaust the fleet; all timestamps land inside the horizon; the schedule
// comes back sorted by (At, slot, type).
func TestRandomScheduleInvariants(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		cfg := ChurnConfig{Slots: 4, Horizon: 1.5, Fatals: 9, Degraded: 4}
		sched := RandomSchedule(seed, cfg)
		fatalSlots := map[int]bool{}
		for i, e := range sched {
			if e.At < 0 || e.At >= cfg.Horizon {
				t.Fatalf("seed %d: event %v outside horizon", seed, e)
			}
			if e.Slot < 0 || e.Slot >= cfg.Slots {
				t.Fatalf("seed %d: event %v outside fleet", seed, e)
			}
			if e.Severity() == Fatal {
				if fatalSlots[e.Slot] {
					t.Fatalf("seed %d: slot %d killed twice", seed, e.Slot)
				}
				fatalSlots[e.Slot] = true
			}
			if i > 0 && sched[i-1].At > e.At {
				t.Fatalf("seed %d: schedule unsorted at %d", seed, i)
			}
		}
		if len(fatalSlots) >= cfg.Slots {
			t.Fatalf("seed %d: every slot killed — no survivor", seed)
		}
	}
}

// TestInjectorAtOrdering: *At injections in any call order come back in
// deterministic (time, slot, type) order.
func TestInjectorAtOrdering(t *testing.T) {
	var in Injector
	in.InjectReplicaLossAt(2, "preempted", 0.9)
	in.InjectXIDAt(0, 79, "fallen off the bus", 0.5)
	in.InjectThermalAt(1, 1.4, 0.5)
	in.InjectECCAt(3, false, "sbe", 0.1)
	sched := in.Schedule()
	var got []string
	for _, e := range sched {
		got = append(got, fmt.Sprintf("%v@%.1f", e.Type, e.At))
	}
	want := []string{"ecc-sbe@0.1", "xid@0.5", "thermal-throttle@0.5", "replica-loss@0.9"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("schedule order %v, want %v", got, want)
	}
	// Same-timestamp tie broke on slot: xid hit slot 0, thermal slot 1.
	if sched[1].Slot != 0 || sched[2].Slot != 1 {
		t.Fatalf("tie-break by slot violated: %v", sched)
	}
}

// TestMonitorModes: immediate mode surfaces a due fatal through Poll;
// deferred mode never does, but FatalBy still answers deterministically.
func TestMonitorModes(t *testing.T) {
	events := []Event{
		{Slot: 0, Type: ThermalThrottle, Factor: 1.5, At: 0.2},
		{Slot: 0, Type: NVLinkDegrade, Factor: 2.0, At: 0.4},
		{Slot: 0, Type: XID, Code: 79, At: 1.0},
	}

	imm := NewMonitor(events, false)
	k, x, fatal := imm.Poll(0.1)
	if k != 1 || x != 1 || fatal != nil {
		t.Fatalf("pre-event poll: k=%v x=%v fatal=%v", k, x, fatal)
	}
	k, x, fatal = imm.Poll(0.5)
	if k != 1.5 || x != 3.0 || fatal != nil {
		t.Fatalf("degraded poll: k=%v x=%v (want 1.5, 3.0) fatal=%v", k, x, fatal)
	}
	_, _, fatal = imm.Poll(1.2)
	fe, ok := fatal.(*FatalError)
	if !ok || fe.Event.Type != XID {
		t.Fatalf("fatal poll returned %v, want xid FatalError", fatal)
	}
	if imm.Tripped() == nil {
		t.Fatal("immediate monitor did not record the trip")
	}

	def := NewMonitor(events, true)
	if _, _, fatal := def.Poll(2.0); fatal != nil {
		t.Fatalf("deferred poll surfaced %v", fatal)
	}
	if ev := def.FatalBy(0.9); ev != nil {
		t.Fatalf("FatalBy(0.9) = %v, want nil", ev)
	}
	if ev := def.FatalBy(1.0); ev == nil || ev.Type != XID {
		t.Fatalf("FatalBy(1.0) = %v, want xid", ev)
	}
	if f := def.LinkFactorBy(0.5); f != 2.0 {
		t.Fatalf("LinkFactorBy = %v, want 2.0", f)
	}
}

// TestMonitorOrigin: schedules written in fleet time survive device-clock
// resets — the monitor's origin shifts local polls into fleet time.
func TestMonitorOrigin(t *testing.T) {
	m := NewMonitor([]Event{{Slot: 1, Type: ECCDBE, At: 5.0}}, false)
	m.SetOrigin(4.9)
	if _, _, fatal := m.Poll(0.05); fatal != nil {
		t.Fatalf("fleet 4.95: premature fatal %v", fatal)
	}
	if _, _, fatal := m.Poll(0.2); fatal == nil {
		t.Fatal("fleet 5.1: fatal not due")
	}
}

// TestMonitorCorrectedErrors: SBE events count against the polled
// high-water mark and never fail the device.
func TestMonitorCorrectedErrors(t *testing.T) {
	m := NewMonitor([]Event{
		{Slot: 0, Type: ECCSBE, At: 0.1},
		{Slot: 0, Type: ECCSBE, At: 0.3},
		{Slot: 0, Type: ECCSBE, At: 0.9},
	}, false)
	if _, _, fatal := m.Poll(0.5); fatal != nil {
		t.Fatalf("SBE surfaced as fatal: %v", fatal)
	}
	if n := m.CorrectedErrors(); n != 2 {
		t.Fatalf("corrected errors = %d, want 2", n)
	}
}
