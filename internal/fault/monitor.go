package fault

import "sync"

// Monitor is one device's live view of its slot's schedule. It implements
// the gpu.Device health hook: the device polls it with the device clock
// before every kernel launch and host-device copy, and the monitor answers
// with the current slowdown multipliers and (in immediate mode) the first
// due fatal event.
//
// Two consumption modes exist:
//
//   - Immediate (deferred = false): Poll surfaces a due fatal event as a
//     *FatalError; the device panics with it at the Launch, aborting the
//     rank mid-epoch. Single-device and partitioned runs use this — the
//     "clean, named abort" arm of the chaos matrix.
//   - Deferred (deferred = true): Poll applies degraded effects only and
//     never fails; the elastic DDP leader instead queries FatalBy at
//     gradient barriers, where every rank's simulated clock is a
//     deterministic value — so the set of dead ranks per iteration is a
//     pure function of the schedule, never of goroutine interleaving.
//
// All clock arguments are local device seconds; the monitor adds its fleet
// origin (the fleet time at which the current round started) so schedules
// written in fleet time survive elastic restarts that reset device clocks.
type Monitor struct {
	mu       sync.Mutex
	events   []Event // sorted by (At, slot, type)
	origin   float64
	deferred bool

	polledTo float64 // fleet-time high-water mark of Poll
	tripped  *Event  // first fatal surfaced in immediate mode
}

// NewMonitor builds a monitor over the slot's events. deferred selects the
// consumption mode (see the type comment).
func NewMonitor(events []Event, deferred bool) *Monitor {
	own := make([]Event, len(events))
	copy(own, events)
	sortEvents(own)
	return &Monitor{events: own, deferred: deferred}
}

// SetOrigin installs the fleet time the device's local clock zero maps to.
func (m *Monitor) SetOrigin(t float64) {
	m.mu.Lock()
	m.origin = t
	m.mu.Unlock()
}

// Origin returns the monitor's fleet origin.
func (m *Monitor) Origin() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.origin
}

// Poll implements the gpu health hook: it reports the kernel and transfer
// slowdown multipliers active at local time now, and in immediate mode the
// first due fatal event as a *FatalError (the device panics with it).
func (m *Monitor) Poll(now float64) (kernelMult, transferMult float64, fatal error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ft := m.origin + now
	if ft > m.polledTo {
		m.polledTo = ft
	}
	kernelMult, transferMult = m.multipliers(ft)
	if m.deferred {
		return kernelMult, transferMult, nil
	}
	if ev := m.fatalBy(ft); ev != nil {
		m.tripped = ev
		return kernelMult, transferMult, &FatalError{Event: *ev}
	}
	return kernelMult, transferMult, nil
}

// multipliers computes the worst active slowdown factors at fleet time ft.
// Thermal throttle slows kernels and transfers alike (the SM and copy
// engines share the clamped clock domain); NVLink degradation slows
// transfers only. Callers hold m.mu.
func (m *Monitor) multipliers(ft float64) (kernel, transfer float64) {
	kernel, transfer = 1, 1
	link := 1.0
	for _, e := range m.events {
		if e.At > ft {
			break
		}
		switch e.Type {
		case ThermalThrottle:
			if f := e.factor(); f > kernel {
				kernel = f
			}
		case NVLinkDegrade:
			if f := e.factor(); f > link {
				link = f
			}
		}
	}
	transfer = kernel * link
	return kernel, transfer
}

// fatalBy returns the first fatal event due at fleet time ft (callers hold
// m.mu).
func (m *Monitor) fatalBy(ft float64) *Event {
	for i := range m.events {
		if m.events[i].At > ft {
			break
		}
		if m.events[i].Severity() == Fatal {
			return &m.events[i]
		}
	}
	return nil
}

// FatalBy returns the first fatal event due at fleet time ft — a pure
// query of the schedule, independent of what Poll has seen. The elastic
// leader calls it with origin + rank-clock-at-barrier, which is
// deterministic across reruns.
func (m *Monitor) FatalBy(ft float64) *Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fatalBy(ft)
}

// LinkFactorBy returns the worst NVLink slowdown active at fleet time ft
// (>= 1). The elastic leader derates ring-allreduce bandwidth by the worst
// factor across ranks: the ring crosses every replica's links.
func (m *Monitor) LinkFactorBy(ft float64) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := 1.0
	for _, e := range m.events {
		if e.At > ft {
			break
		}
		if e.Type == NVLinkDegrade {
			if ef := e.factor(); ef > f {
				f = ef
			}
		}
	}
	return f
}

// Tripped returns the fatal event Poll surfaced in immediate mode, nil
// before then.
func (m *Monitor) Tripped() *Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.tripped
}

// CorrectedErrors counts ECC single-bit (info) events due by the furthest
// point the device has polled: the fleet's corrected-error telemetry.
func (m *Monitor) CorrectedErrors() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.At > m.polledTo {
			break
		}
		if e.Type == ECCSBE {
			n++
		}
	}
	return n
}

// Events returns the monitor's schedule (sorted copy).
func (m *Monitor) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Event, len(m.events))
	copy(out, m.events)
	return out
}
