package fault

import (
	"fmt"
	"math/rand"
)

// Injector accumulates a fleet's health-event schedule through *At-style
// injection calls (Navarch's Injectable manager idiom): every event carries
// an explicit simulated timestamp, so a test's chaos scenario is a value,
// not a side effect of wall-clock timing. Build the schedule up front,
// then hand per-slot views to monitors with Schedule.
type Injector struct {
	events []Event
}

// NewInjector returns an empty injector.
func NewInjector() *Injector { return &Injector{} }

// InjectXIDAt schedules a fatal XID error against slot at fleet time t.
func (in *Injector) InjectXIDAt(slot, code int, msg string, t float64) {
	in.add(Event{Slot: slot, Type: XID, Code: code, Msg: msg, At: t})
}

// InjectECCAt schedules an ECC error: double = true is an uncorrectable
// DBE (fatal), false a corrected SBE (info).
func (in *Injector) InjectECCAt(slot int, double bool, msg string, t float64) {
	typ := ECCSBE
	if double {
		typ = ECCDBE
	}
	in.add(Event{Slot: slot, Type: typ, Msg: msg, At: t})
}

// InjectThermalAt schedules a thermal throttle: kernels and transfers on
// the slot slow by factor (0 = DefaultThermalFactor) from t onward.
func (in *Injector) InjectThermalAt(slot int, factor float64, t float64) {
	in.add(Event{Slot: slot, Type: ThermalThrottle, Factor: factor, At: t})
}

// InjectNVLinkAt schedules link degradation: collectives through the slot
// slow by factor (0 = DefaultNVLinkFactor) from t onward.
func (in *Injector) InjectNVLinkAt(slot int, factor float64, t float64) {
	in.add(Event{Slot: slot, Type: NVLinkDegrade, Factor: factor, At: t})
}

// InjectReplicaLossAt schedules the slot's whole replica dying at t.
func (in *Injector) InjectReplicaLossAt(slot int, msg string, t float64) {
	in.add(Event{Slot: slot, Type: ReplicaLoss, Msg: msg, At: t})
}

func (in *Injector) add(e Event) {
	if e.Slot < 0 {
		panic(fmt.Sprintf("fault: negative slot %d", e.Slot))
	}
	if e.At < 0 {
		panic(fmt.Sprintf("fault: negative timestamp %v", e.At))
	}
	in.events = append(in.events, e)
}

// Schedule returns the full schedule in deterministic order (time, slot,
// type). The returned slice is a copy.
func (in *Injector) Schedule() []Event {
	out := make([]Event, len(in.events))
	copy(out, in.events)
	sortEvents(out)
	return out
}

// SlotEvents filters a schedule down to one slot, preserving order.
func SlotEvents(sched []Event, slot int) []Event {
	var out []Event
	for _, e := range sched {
		if e.Slot == slot {
			out = append(out, e)
		}
	}
	return out
}

// ChurnConfig parameterizes a random chaos schedule.
type ChurnConfig struct {
	// Slots is the fleet size events are drawn against.
	Slots int
	// Horizon is the fleet-time window [0, Horizon) events land in.
	Horizon float64
	// Fatals is the number of fatal events (XID / ECC-DBE / replica loss,
	// drawn uniformly); at most Slots-1 distinct slots are killed so the
	// fleet always retains a survivor.
	Fatals int
	// Degraded is the number of degraded/info events (thermal, NVLink,
	// ECC-SBE, drawn uniformly) layered on top.
	Degraded int
}

// RandomSchedule draws a chaos schedule from seed. The draw is a pure
// function of (seed, cfg): identical inputs replay bitwise-identically
// (pinned by TestRandomSchedulePureFunction), which is what makes a whole
// chaos run reproducible end to end.
func RandomSchedule(seed int64, cfg ChurnConfig) []Event {
	if cfg.Slots < 1 {
		panic("fault: schedule needs at least one slot")
	}
	rng := rand.New(rand.NewSource(seed))
	var in Injector

	maxFatals := cfg.Fatals
	if maxFatals > cfg.Slots-1 {
		maxFatals = cfg.Slots - 1
	}
	// Fatal events hit distinct slots: kill the same device twice and the
	// second event is dead weight. Draw a partial Fisher-Yates over slots.
	perm := rng.Perm(cfg.Slots)
	fatalKinds := []EventType{XID, ECCDBE, ReplicaLoss}
	for i := 0; i < maxFatals; i++ {
		t := rng.Float64() * cfg.Horizon
		switch fatalKinds[rng.Intn(len(fatalKinds))] {
		case XID:
			in.InjectXIDAt(perm[i], 79, "GPU has fallen off the bus", t)
		case ECCDBE:
			in.InjectECCAt(perm[i], true, "uncorrectable DBE", t)
		default:
			in.InjectReplicaLossAt(perm[i], "node preempted", t)
		}
	}
	for i := 0; i < cfg.Degraded; i++ {
		slot := rng.Intn(cfg.Slots)
		t := rng.Float64() * cfg.Horizon
		switch rng.Intn(3) {
		case 0:
			in.InjectThermalAt(slot, 1+0.5*rng.Float64(), t)
		case 1:
			in.InjectNVLinkAt(slot, 1.5+rng.Float64(), t)
		default:
			in.InjectECCAt(slot, false, "corrected SBE", t)
		}
	}
	return in.Schedule()
}
