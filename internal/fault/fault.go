// Package fault is the injectable health-event plane of the simulated
// fleet, modeled on Navarch's Injectable GPU manager: XID errors, ECC
// single/double bit errors, thermal throttling, NVLink degradation, and
// whole-replica loss, scheduled deterministically against the simulated
// clock. Events are injected with *At-style timestamp control, so every
// chaos run is seeded and bitwise reproducible — the same schedule replays
// identically no matter how the host goroutines interleave.
//
// The package is dependency-free by design: gpu.Device consumes a Monitor
// through its own small Health interface (throttle multipliers, parked
// fatal errors), and the elastic DDP layer queries monitors at barrier
// points where every rank's simulated clock is deterministic.
package fault

import (
	"fmt"
	"sort"
)

// EventType enumerates the health events the fleet can suffer. The set
// mirrors the DCGM/XID taxonomy Navarch's health plane watches.
type EventType int

const (
	// XID is a driver-reported XID error (e.g. 79, "GPU has fallen off
	// the bus"). The simulated fleet only injects job-fatal XIDs.
	XID EventType = iota
	// ECCSBE is a corrected single-bit ECC error: logged, never fatal.
	ECCSBE
	// ECCDBE is an uncorrectable double-bit ECC error: the device's
	// memory is poisoned and the replica must be torn down.
	ECCDBE
	// ThermalThrottle clamps the SM clock: kernels and transfers slow by
	// the event's factor until the run ends, numerics untouched.
	ThermalThrottle
	// NVLinkDegrade reduces interconnect bandwidth through the device's
	// links: collectives and halo exchanges slow, numerics untouched.
	NVLinkDegrade
	// ReplicaLoss kills the whole replica process mid-epoch (node crash,
	// preemption): indistinguishable from a fatal device error to the
	// survivors.
	ReplicaLoss

	numEventTypes
)

// String returns the event type's mnemonic.
func (t EventType) String() string {
	switch t {
	case XID:
		return "xid"
	case ECCSBE:
		return "ecc-sbe"
	case ECCDBE:
		return "ecc-dbe"
	case ThermalThrottle:
		return "thermal-throttle"
	case NVLinkDegrade:
		return "nvlink-degrade"
	case ReplicaLoss:
		return "replica-loss"
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// AllEventTypes returns every event type, in declaration order.
func AllEventTypes() []EventType {
	out := make([]EventType, 0, numEventTypes)
	for t := EventType(0); t < numEventTypes; t++ {
		out = append(out, t)
	}
	return out
}

// Severity classifies an event's effect on the training job.
type Severity int

const (
	// Info events are logged and counted but change nothing.
	Info Severity = iota
	// Degraded events slow the device or its links without corrupting
	// state: the job limps on with identical numerics.
	Degraded
	// Fatal events end the replica: its state is unrecoverable and the
	// fleet must drop or replace it.
	Fatal
)

// String returns the severity's name.
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Degraded:
		return "degraded"
	case Fatal:
		return "fatal"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Classify maps an event type to its severity. The mapping is total (every
// type classifies) and stable (pinned by TestSeverityTaxonomy); elastic
// recovery and the chaos harness both branch on it, so a type that drifted
// between fatal and degraded would corrupt recovery decisions.
func Classify(t EventType) Severity {
	switch t {
	case XID, ECCDBE, ReplicaLoss:
		return Fatal
	case ThermalThrottle, NVLinkDegrade:
		return Degraded
	case ECCSBE:
		return Info
	}
	panic(fmt.Sprintf("fault: unclassified event type %d", int(t)))
}

// Event is one scheduled health event against one fleet slot.
type Event struct {
	// Slot is the fleet position (original device index) the event hits.
	// Slots are stable across elastic re-sharding; replica rank indices
	// are not.
	Slot int
	// Type selects the failure mode; Severity() derives from it.
	Type EventType
	// At is the event's timestamp in fleet-simulated seconds: the event
	// fires when the slot's device clock (plus the fleet origin) passes it.
	At float64
	// Code is the XID code for XID events (0 otherwise).
	Code int
	// Factor is the slowdown multiplier (>= 1) for ThermalThrottle
	// (kernel + transfer time) and NVLinkDegrade (link time); 0 means the
	// type's default.
	Factor float64
	// Msg is the human-readable description carried into errors.
	Msg string
}

// Severity returns the event's classification.
func (e Event) Severity() Severity { return Classify(e.Type) }

// factor returns the effective slowdown multiplier, defaulting per type.
func (e Event) factor() float64 {
	if e.Factor > 1 {
		return e.Factor
	}
	switch e.Type {
	case ThermalThrottle:
		return DefaultThermalFactor
	case NVLinkDegrade:
		return DefaultNVLinkFactor
	}
	return 1
}

// Default slowdown factors: a thermally capped V100 drops from boost to
// base clocks (~1.35x slower), and a degraded NVLink falls back to half
// width (2x slower).
const (
	DefaultThermalFactor = 1.35
	DefaultNVLinkFactor  = 2.0
)

// String renders the event for logs and error messages.
func (e Event) String() string {
	s := fmt.Sprintf("%s on slot %d at %.6fs", e.Type, e.Slot, e.At)
	if e.Type == XID {
		s = fmt.Sprintf("xid %d on slot %d at %.6fs", e.Code, e.Slot, e.At)
	}
	if e.Msg != "" {
		s += " (" + e.Msg + ")"
	}
	return s
}

// FatalError is the error a fatal health event surfaces as: the simulated
// device panics with it at the next kernel launch (mirroring the parked
// vmem.OOMError protocol), or the elastic leader latches it at a barrier.
type FatalError struct {
	Event Event
}

// Error implements error with the event's full identity, so "a clean,
// named abort" names exactly what killed the rank.
func (f *FatalError) Error() string {
	return fmt.Sprintf("fault: fatal health event: %s", f.Event)
}

// sortEvents orders events deterministically: by timestamp, then slot,
// then type — a pure function of the schedule's content.
func sortEvents(events []Event) {
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].At != events[j].At {
			return events[i].At < events[j].At
		}
		if events[i].Slot != events[j].Slot {
			return events[i].Slot < events[j].Slot
		}
		return events[i].Type < events[j].Type
	})
}
