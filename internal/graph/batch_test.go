package graph

import (
	"math/rand"
	"testing"
)

func triangle() *CSR {
	return FromEdges(3, 3, []Edge{
		{0, 1}, {1, 0}, {1, 2}, {2, 1}, {0, 2}, {2, 0},
	})
}

func TestBatchBlockDiagonal(t *testing.T) {
	g1 := triangle()
	g2 := FromEdges(2, 2, []Edge{{0, 1}, {1, 0}})
	b := NewBatch([]*CSR{g1, g2})

	if b.NumGraphs() != 2 || b.NumNodes() != 5 {
		t.Fatalf("batch dims: %d graphs, %d nodes", b.NumGraphs(), b.NumNodes())
	}
	if err := b.Adj.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.Adj.NNZ() != g1.NNZ()+g2.NNZ() {
		t.Fatal("edge count changed")
	}
	// No cross-graph edges.
	for dst := 0; dst < b.NumNodes(); dst++ {
		for _, src := range b.Adj.Neighbors(dst) {
			if b.GraphID[src] != b.GraphID[dst] {
				t.Fatalf("cross-graph edge %d->%d", src, dst)
			}
		}
	}
	s1, e1 := b.GraphNodes(0)
	s2, e2 := b.GraphNodes(1)
	if s1 != 0 || e1 != 3 || s2 != 3 || e2 != 5 {
		t.Fatalf("offsets: [%d,%d) [%d,%d)", s1, e1, s2, e2)
	}
	// Edges shifted correctly: g2's 0->1 becomes 3->4.
	if !b.Adj.HasEdge(3, 4) {
		t.Fatal("shifted edge missing")
	}
}

func TestBatchRejectsNonSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewBatch([]*CSR{FromEdges(2, 3, nil)})
}

func TestBatchEmptyAndSingle(t *testing.T) {
	b := NewBatch(nil)
	if b.NumGraphs() != 0 || b.NumNodes() != 0 {
		t.Fatal("empty batch should be empty")
	}
	one := NewBatch([]*CSR{triangle()})
	if one.NumNodes() != 3 || one.Adj.NNZ() != 6 {
		t.Fatal("single batch mangled")
	}
}

func TestBatchManyRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var gs []*CSR
	total := 0
	for i := 0; i < 20; i++ {
		n := 3 + rng.Intn(10)
		gs = append(gs, RandomGNP(rng, n, 0.3))
		total += n
	}
	b := NewBatch(gs)
	if b.NumNodes() != total {
		t.Fatalf("nodes = %d, want %d", b.NumNodes(), total)
	}
	if err := b.Adj.Validate(); err != nil {
		t.Fatal(err)
	}
	// GraphID consistent with offsets.
	for g := 0; g < b.NumGraphs(); g++ {
		s, e := b.GraphNodes(g)
		for v := s; v < e; v++ {
			if b.GraphID[v] != int32(g) {
				t.Fatalf("GraphID[%d] = %d, want %d", v, b.GraphID[v], g)
			}
		}
	}
}
