package graph

import (
	"fmt"
	"sort"
)

// Relation names one edge type of a heterogeneous graph as a
// (source node type, edge type, destination node type) triple, DGL-style.
type Relation struct {
	SrcType, EdgeType, DstType string
}

// String renders the canonical "src:etype:dst" form.
func (r Relation) String() string {
	return r.SrcType + ":" + r.EdgeType + ":" + r.DstType
}

// Hetero is a heterogeneous graph: multiple node types, each with its own
// node count, and one CSR per relation. PinSAGE-style recommendation graphs
// (user/item bipartite with typed interactions) are instances.
type Hetero struct {
	nodeCounts map[string]int
	relations  map[Relation]*CSR
}

// NewHetero creates an empty heterogeneous graph.
func NewHetero() *Hetero {
	return &Hetero{nodeCounts: map[string]int{}, relations: map[Relation]*CSR{}}
}

// AddNodeType declares a node type with count nodes. Re-declaring with a
// different count panics (programmer error).
func (h *Hetero) AddNodeType(name string, count int) {
	if c, ok := h.nodeCounts[name]; ok && c != count {
		panic(fmt.Sprintf("graph: node type %q redeclared with count %d (was %d)", name, count, c))
	}
	h.nodeCounts[name] = count
}

// NumNodes returns the node count of a type (0 when undeclared).
func (h *Hetero) NumNodes(nodeType string) int { return h.nodeCounts[nodeType] }

// NodeTypes returns the declared node types in sorted order.
func (h *Hetero) NodeTypes() []string {
	out := make([]string, 0, len(h.nodeCounts))
	for t := range h.nodeCounts {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// AddRelation installs the adjacency of one relation. The CSR's rows must
// equal the destination type's node count and columns the source type's.
func (h *Hetero) AddRelation(rel Relation, adj *CSR) {
	nd, okd := h.nodeCounts[rel.DstType]
	ns, oks := h.nodeCounts[rel.SrcType]
	if !okd || !oks {
		panic(fmt.Sprintf("graph: relation %v references undeclared node types", rel))
	}
	if adj.Rows != nd || adj.Cols != ns {
		panic(fmt.Sprintf("graph: relation %v adjacency is %dx%d, want %dx%d",
			rel, adj.Rows, adj.Cols, nd, ns))
	}
	h.relations[rel] = adj
}

// Adj returns the adjacency of a relation, or nil when absent.
func (h *Hetero) Adj(rel Relation) *CSR { return h.relations[rel] }

// Relations returns all relations in deterministic (sorted) order.
func (h *Hetero) Relations() []Relation {
	out := make([]Relation, 0, len(h.relations))
	for r := range h.relations {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// NumEdges returns the total edge count over all relations.
func (h *Hetero) NumEdges() int {
	n := 0
	for _, g := range h.relations {
		n += g.NNZ()
	}
	return n
}

// Validate checks all relation adjacencies.
func (h *Hetero) Validate() error {
	for _, rel := range h.Relations() {
		if err := h.relations[rel].Validate(); err != nil {
			return fmt.Errorf("relation %v: %w", rel, err)
		}
	}
	return nil
}
