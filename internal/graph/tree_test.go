package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRandomTreeValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, leaves := range []int{1, 2, 5, 20, 64} {
		tr := RandomTree(rng, leaves, 100, 5)
		if err := tr.Validate(); err != nil {
			t.Fatalf("leaves=%d: %v", leaves, err)
		}
		got := tr.Leaves()
		if len(got) != leaves {
			t.Fatalf("leaves=%d: got %d leaf nodes", leaves, len(got))
		}
		// Binary interior: node count = 2*leaves - 1.
		if tr.NumNodes() != 2*leaves-1 {
			t.Fatalf("leaves=%d: %d nodes, want %d", leaves, tr.NumNodes(), 2*leaves-1)
		}
		for _, lf := range got {
			if tr.Tokens[lf] < 0 || tr.Tokens[lf] >= 100 {
				t.Fatalf("leaf token %d out of vocab", tr.Tokens[lf])
			}
		}
		if tr.Label < 0 || tr.Label >= 5 {
			t.Fatalf("label %d out of range", tr.Label)
		}
	}
}

func TestTreeLevelsSchedulable(t *testing.T) {
	// Property: every node appears in exactly one level, and all children of
	// a node live in strictly earlier levels.
	f := func(seed int64, leavesRaw uint8) bool {
		leaves := int(leavesRaw%30) + 1
		tr := RandomTree(rand.New(rand.NewSource(seed)), leaves, 50, 3)
		levels := tr.Levels()
		levelOf := make([]int, tr.NumNodes())
		seen := make([]bool, tr.NumNodes())
		for li, nodes := range levels {
			for _, v := range nodes {
				if seen[v] {
					return false
				}
				seen[v] = true
				levelOf[v] = li
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		for v := 0; v < tr.NumNodes(); v++ {
			for _, c := range tr.Children[v] {
				if levelOf[c] >= levelOf[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeLevelsLeavesFirst(t *testing.T) {
	tr := RandomTree(rand.New(rand.NewSource(1)), 10, 10, 2)
	levels := tr.Levels()
	for _, v := range levels[0] {
		if len(tr.Children[v]) != 0 {
			t.Fatal("level 0 must contain only leaves")
		}
	}
	// Root is in the last level.
	last := levels[len(levels)-1]
	foundRoot := false
	for _, v := range last {
		if v == 0 {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Fatal("root must be in the final level")
	}
}

func TestTreeValidateCatchesCorruption(t *testing.T) {
	tr := RandomTree(rand.New(rand.NewSource(2)), 4, 10, 2)
	tr.Parent[1] = 99
	if tr.Validate() == nil {
		t.Fatal("bad parent pointer not detected")
	}
	tr2 := &Tree{Parent: []int32{0}, Children: [][]int32{nil}, Tokens: []int32{0}}
	if tr2.Validate() == nil {
		t.Fatal("non -1 root parent not detected")
	}
}

func TestRandomTreePanicsOnZeroLeaves(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	RandomTree(rand.New(rand.NewSource(1)), 0, 10, 2)
}
