package graph

import "testing"

func buildBipartite(t *testing.T) (*Hetero, Relation, Relation) {
	t.Helper()
	h := NewHetero()
	h.AddNodeType("user", 3)
	h.AddNodeType("item", 4)
	liked := Relation{SrcType: "user", EdgeType: "liked", DstType: "item"}
	likedBy := Relation{SrcType: "item", EdgeType: "liked-by", DstType: "user"}
	edges := []Edge{{Src: 0, Dst: 0}, {Src: 0, Dst: 1}, {Src: 1, Dst: 1}, {Src: 2, Dst: 3}}
	h.AddRelation(liked, FromEdges(4, 3, edges))
	rev := make([]Edge, len(edges))
	for i, e := range edges {
		rev[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	h.AddRelation(likedBy, FromEdges(3, 4, rev))
	return h, liked, likedBy
}

func TestHeteroBasics(t *testing.T) {
	h, liked, _ := buildBipartite(t)
	if h.NumNodes("user") != 3 || h.NumNodes("item") != 4 {
		t.Fatal("node counts wrong")
	}
	if h.NumNodes("missing") != 0 {
		t.Fatal("undeclared type must have 0 nodes")
	}
	if got := h.NumEdges(); got != 8 {
		t.Fatalf("edges = %d, want 8", got)
	}
	if h.Adj(liked) == nil {
		t.Fatal("relation lost")
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	types := h.NodeTypes()
	if len(types) != 2 || types[0] != "item" || types[1] != "user" {
		t.Fatalf("NodeTypes = %v", types)
	}
	rels := h.Relations()
	if len(rels) != 2 {
		t.Fatalf("Relations = %v", rels)
	}
	if rels[0].String() != "item:liked-by:user" {
		t.Fatalf("relation order not deterministic: %v", rels)
	}
}

func TestHeteroAddRelationChecksShape(t *testing.T) {
	h := NewHetero()
	h.AddNodeType("a", 2)
	h.AddNodeType("b", 3)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on shape mismatch")
		}
	}()
	h.AddRelation(Relation{SrcType: "a", EdgeType: "x", DstType: "b"}, FromEdges(2, 2, nil))
}

func TestHeteroRedeclareMismatchPanics(t *testing.T) {
	h := NewHetero()
	h.AddNodeType("a", 2)
	h.AddNodeType("a", 2) // same count is fine
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on count change")
		}
	}()
	h.AddNodeType("a", 5)
}

func TestHeteroUndeclaredTypePanics(t *testing.T) {
	h := NewHetero()
	h.AddNodeType("a", 2)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for undeclared node type")
		}
	}()
	h.AddRelation(Relation{SrcType: "a", EdgeType: "x", DstType: "ghost"}, FromEdges(1, 2, nil))
}
