package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func smallCSR() *CSR {
	// 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0  (src -> dst)
	return FromEdges(3, 3, []Edge{
		{Src: 0, Dst: 1}, {Src: 0, Dst: 2}, {Src: 1, Dst: 2}, {Src: 2, Dst: 0},
	})
}

func TestFromEdgesBasic(t *testing.T) {
	g := smallCSR()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", g.NNZ())
	}
	if g.Degree(2) != 2 {
		t.Fatalf("in-degree(2) = %d, want 2", g.Degree(2))
	}
	nb := g.Neighbors(2)
	if len(nb) != 2 || nb[0] != 0 || nb[1] != 1 {
		t.Fatalf("Neighbors(2) = %v, want [0 1]", nb)
	}
	if !g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("HasEdge wrong")
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromEdges(2, 2, []Edge{{Src: 0, Dst: 5}})
}

func TestTransposeInvolution(t *testing.T) {
	g := smallCSR()
	tt := g.Transpose().Transpose()
	if tt.Rows != g.Rows || tt.NNZ() != g.NNZ() {
		t.Fatal("transpose changed size")
	}
	for i := 0; i < g.Rows; i++ {
		a, b := g.Neighbors(i), tt.Neighbors(i)
		if len(a) != len(b) {
			t.Fatalf("row %d degree changed", i)
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("row %d differs: %v vs %v", i, a, b)
			}
		}
	}
}

func TestTransposeWeights(t *testing.T) {
	g := smallCSR()
	g.Vals = []float32{1, 2, 3, 4}
	tr := g.Transpose()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Edge 2->0 had the weight at row 0 position 0 (only entry).
	w := g.Weights(0)[0]
	// In the transpose it lives in row 2 (dst=2... src/dst swap): find it.
	found := false
	for i := 0; i < tr.Rows; i++ {
		for k, c := range tr.Neighbors(i) {
			if i == 2 && c == 0 {
				if tr.Weights(i)[k] != w {
					t.Fatalf("weight not carried: %g vs %g", tr.Weights(i)[k], w)
				}
				found = true
			}
		}
	}
	if !found {
		t.Fatal("transposed edge not found")
	}
}

func TestWithSelfLoops(t *testing.T) {
	g := smallCSR()
	s := g.WithSelfLoops()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < s.Rows; i++ {
		if !s.HasEdge(int32(i), int32(i)) {
			t.Fatalf("node %d missing self loop", i)
		}
	}
	if s.NNZ() != g.NNZ()+3 {
		t.Fatalf("nnz = %d, want %d", s.NNZ(), g.NNZ()+3)
	}
	// Idempotent: adding again must not duplicate.
	s2 := s.WithSelfLoops()
	if s2.NNZ() != s.NNZ() {
		t.Fatal("WithSelfLoops not idempotent")
	}
}

func TestNormalizeGCNRowsums(t *testing.T) {
	// For a k-regular graph the GCN-normalized matrix has row sums 1.
	// Build an undirected cycle (2-regular + self loop -> 3 entries/row).
	n := 8
	var edges []Edge
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		edges = append(edges, Edge{Src: int32(i), Dst: int32(j)}, Edge{Src: int32(j), Dst: int32(i)})
	}
	g := FromEdges(n, n, edges).NormalizeGCN()
	for i := 0; i < n; i++ {
		var sum float64
		for _, w := range g.Weights(i) {
			sum += float64(w)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sum = %g, want 1", i, sum)
		}
	}
}

func TestNormalizeRWRowsumsOne(t *testing.T) {
	g := smallCSR().NormalizeRW()
	for i := 0; i < g.Rows; i++ {
		var sum float64
		for _, w := range g.Weights(i) {
			sum += float64(w)
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("row %d sum = %g, want 1", i, sum)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := smallCSR()
	g.RowPtr[1] = 99
	if g.Validate() == nil {
		t.Fatal("corrupt RowPtr not detected")
	}
	g = smallCSR()
	g.ColIdx[0] = 77
	if g.Validate() == nil {
		t.Fatal("out-of-range column not detected")
	}
	g = smallCSR()
	g.Vals = []float32{1}
	if g.Validate() == nil {
		t.Fatal("short Vals not detected")
	}
}

func TestRandomGNPProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n, p := 200, 0.05
	g := RandomGNP(rng, n, p)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Expected edges ~ n*(n-1)*p = 1990; allow generous slack.
	want := float64(n) * float64(n-1) * p
	if got := float64(g.NNZ()); got < want*0.7 || got > want*1.3 {
		t.Fatalf("GNP edges = %g, want ~%g", got, want)
	}
	for i := 0; i < n; i++ {
		if g.HasEdge(int32(i), int32(i)) {
			t.Fatal("GNP must not generate self loops")
		}
	}
}

func TestRandomGNPDeterministic(t *testing.T) {
	a := RandomGNP(rand.New(rand.NewSource(7)), 100, 0.1)
	b := RandomGNP(rand.New(rand.NewSource(7)), 100, 0.1)
	if a.NNZ() != b.NNZ() {
		t.Fatal("GNP not deterministic per seed")
	}
}

func TestPreferentialAttachment(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PreferentialAttachment(rng, 300, 3)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undirected: every edge stored both ways.
	for dst := 0; dst < g.Rows; dst++ {
		for _, src := range g.Neighbors(dst) {
			if !g.HasEdge(int32(dst), src) {
				t.Fatalf("edge (%d,%d) not symmetric", src, dst)
			}
		}
	}
	// Degree skew: max degree far above the mean (scale-free shape).
	maxDeg, sumDeg := 0, 0
	for i := 0; i < g.Rows; i++ {
		d := g.Degree(i)
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(sumDeg) / float64(g.Rows)
	if float64(maxDeg) < 3*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestCSRRoundTripProperty(t *testing.T) {
	// Property: FromEdges preserves the multiset of in-bound edges.
	f := func(raw []uint8) bool {
		n := 16
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: int32(raw[i] % uint8(n)), Dst: int32(raw[i+1] % uint8(n))})
		}
		g := FromEdges(n, n, edges)
		if g.Validate() != nil || g.NNZ() != len(edges) {
			return false
		}
		count := map[[2]int32]int{}
		for _, e := range edges {
			count[[2]int32{e.Src, e.Dst}]++
		}
		for dst := 0; dst < n; dst++ {
			for _, src := range g.Neighbors(dst) {
				count[[2]int32{src, int32(dst)}]--
			}
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
