package graph

import (
	"fmt"
	"math/rand"
)

// Tree is a rooted tree for Tree-LSTM workloads: node 0 is the root, every
// other node has exactly one parent, and leaves carry token ids.
type Tree struct {
	// Parent[i] is node i's parent; Parent[0] == -1.
	Parent []int32
	// Children[i] lists node i's children in ascending order.
	Children [][]int32
	// Tokens[i] is the input token at node i (leaves) or -1 (internal).
	Tokens []int32
	// Label is the tree-level class (sentiment), if any.
	Label int
}

// NumNodes returns the node count.
func (t *Tree) NumNodes() int { return len(t.Parent) }

// Leaves returns the indices of nodes without children.
func (t *Tree) Leaves() []int32 {
	var out []int32
	for i, ch := range t.Children {
		if len(ch) == 0 {
			out = append(out, int32(i))
		}
	}
	return out
}

// Levels partitions nodes into bottom-up schedulable levels: level 0 holds
// the leaves, level k the nodes whose children all lie in levels < k. A
// Tree-LSTM processes one level per step; the number of levels is the number
// of dependent kernel waves (the paper's launch-bound pathology).
func (t *Tree) Levels() [][]int32 {
	depth := make([]int, t.NumNodes())
	var levels [][]int32
	// Children always have larger indices than parents in our builder, so a
	// reverse index sweep computes depths bottom-up; fall back to a fixpoint
	// loop for arbitrary orderings.
	for changed := true; changed; {
		changed = false
		for i := t.NumNodes() - 1; i >= 0; i-- {
			d := 0
			for _, c := range t.Children[i] {
				if depth[c]+1 > d {
					d = depth[c] + 1
				}
			}
			if depth[i] != d {
				depth[i] = d
				changed = true
			}
		}
	}
	for i, d := range depth {
		for len(levels) <= d {
			levels = append(levels, nil)
		}
		levels[d] = append(levels[d], int32(i))
	}
	return levels
}

// Validate checks the parent/children cross-consistency and acyclicity.
func (t *Tree) Validate() error {
	n := t.NumNodes()
	if n == 0 {
		return fmt.Errorf("graph: empty tree")
	}
	if t.Parent[0] != -1 {
		return fmt.Errorf("graph: root parent = %d, want -1", t.Parent[0])
	}
	if len(t.Children) != n || len(t.Tokens) != n {
		return fmt.Errorf("graph: tree slice lengths disagree")
	}
	seen := 0
	for i, ch := range t.Children {
		for _, c := range ch {
			if c <= 0 || int(c) >= n {
				return fmt.Errorf("graph: child %d of node %d out of range", c, i)
			}
			if t.Parent[c] != int32(i) {
				return fmt.Errorf("graph: child %d's parent is %d, want %d", c, t.Parent[c], i)
			}
			seen++
		}
	}
	if seen != n-1 {
		return fmt.Errorf("graph: tree has %d child links, want %d", seen, n-1)
	}
	return nil
}

// RandomTree generates a random binary-ish parse tree with the given number
// of leaves; interior nodes are created by repeatedly merging adjacent
// spans, mimicking constituency-parse shapes. Leaf tokens are drawn from
// [0, vocab); the label from [0, classes).
func RandomTree(rng *rand.Rand, leaves, vocab, classes int) *Tree {
	if leaves < 1 {
		panic("graph: RandomTree requires at least one leaf")
	}
	// Build top-down: maintain a frontier of spans to split.
	type span struct{ node, size int32 }
	parent := []int32{-1}
	children := [][]int32{nil}
	stack := []span{{0, int32(leaves)}}
	var leafNodes []int32
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.size == 1 {
			leafNodes = append(leafNodes, s.node)
			continue
		}
		cut := int32(1)
		if s.size > 2 {
			cut = 1 + int32(rng.Intn(int(s.size-1)))
		}
		l := int32(len(parent))
		parent = append(parent, s.node, s.node)
		children = append(children, nil, nil)
		children[s.node] = []int32{l, l + 1}
		stack = append(stack, span{l, cut}, span{l + 1, s.size - cut})
	}
	tokens := make([]int32, len(parent))
	for i := range tokens {
		tokens[i] = -1
	}
	for _, lf := range leafNodes {
		tokens[lf] = int32(rng.Intn(vocab))
	}
	label := 0
	if classes > 0 {
		label = rng.Intn(classes)
	}
	return &Tree{Parent: parent, Children: children, Tokens: tokens, Label: label}
}
