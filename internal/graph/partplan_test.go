package graph

import (
	"math/rand"
	"reflect"
	"testing"
)

// partitionCases builds a spread of graph shapes for the property tests.
func partitionCases(t *testing.T) map[string]*CSR {
	t.Helper()
	return map[string]*CSR{
		"pa-200":    PreferentialAttachment(rand.New(rand.NewSource(7)), 200, 3),
		"ws-150":    WattsStrogatz(rand.New(rand.NewSource(8)), 150, 4, 0.1),
		"gnp-120":   RandomGNP(rand.New(rand.NewSource(9)), 120, 0.05),
		"empty":     FromEdges(0, 0, nil),
		"singleton": FromEdges(1, 1, nil),
	}
}

// bruteCut recounts the cut by scanning every edge against the labeling.
func bruteCut(g *CSR, parts []int32) int {
	cut := 0
	for dst := 0; dst < g.Rows; dst++ {
		for _, src := range g.Neighbors(dst) {
			if parts[src] != parts[dst] {
				cut++
			}
		}
	}
	return cut
}

// TestPartitionProperties checks, for every partitioner and graph shape:
// every node assigned exactly once to a part in [0, k), the reported edge
// cut matching a brute-force count, determinism across runs, and the part
// count respected (no part overfull; every part populated when k <= n).
func TestPartitionProperties(t *testing.T) {
	type method struct {
		name string
		run  func(g *CSR, k int) ([]int32, int)
	}
	methods := []method{
		{"bfs", func(g *CSR, k int) ([]int32, int) { return PartitionBFS(g, k) }},
		{"random", func(g *CSR, k int) ([]int32, int) { return PartitionRandom(g, k, 11) }},
	}
	for gname, g := range partitionCases(t) {
		for _, m := range methods {
			for _, k := range []int{1, 2, 3, 4, 7} {
				parts, cut := m.run(g, k)
				if len(parts) != g.Rows {
					t.Fatalf("%s/%s k=%d: %d labels for %d nodes", m.name, gname, k, len(parts), g.Rows)
				}
				for i, p := range parts {
					if p < 0 || int(p) >= k {
						t.Fatalf("%s/%s k=%d: node %d part %d out of [0,%d)", m.name, gname, k, i, p, k)
					}
				}
				if want := bruteCut(g, parts); cut != want {
					t.Fatalf("%s/%s k=%d: cut %d, brute force %d", m.name, gname, k, cut, want)
				}
				sizes := PartitionSizes(parts, k)
				total := 0
				for p, s := range sizes {
					total += s
					if k <= g.Rows && s == 0 {
						t.Fatalf("%s/%s k=%d: part %d empty with %d nodes available", m.name, gname, k, p, g.Rows)
					}
				}
				if total != g.Rows {
					t.Fatalf("%s/%s k=%d: sizes %v cover %d of %d nodes", m.name, gname, k, sizes, total, g.Rows)
				}
				parts2, cut2 := m.run(g, k)
				if cut2 != cut || !reflect.DeepEqual(parts, parts2) {
					t.Fatalf("%s/%s k=%d: nondeterministic partition", m.name, gname, k)
				}
			}
		}
	}
}

// TestPartitionBFSDegenerate pins the graceful-degradation contract: empty
// graphs return an empty labeling, k > n yields singleton parts.
func TestPartitionBFSDegenerate(t *testing.T) {
	empty := FromEdges(0, 0, nil)
	parts, cut := PartitionBFS(empty, 5)
	if len(parts) != 0 || cut != 0 {
		t.Fatalf("empty graph: parts=%v cut=%d", parts, cut)
	}
	g := PreferentialAttachment(rand.New(rand.NewSource(5)), 6, 2)
	parts, _ = PartitionBFS(g, 10)
	for i, p := range parts {
		if int(p) != i {
			t.Fatalf("k>n: node %d in part %d, want singleton parts", i, p)
		}
	}
}

// TestPartitionPlanStructure validates the plan invariants the partitioned
// engine depends on: local numbering, halo completeness, route symmetry,
// and local-SpMM row equivalence with the global matrix.
func TestPartitionPlanStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g := PreferentialAttachment(rng, 300, 3).NormalizeGCN()
	const k = 4
	plan := PartitionPlanBFS(g, k)

	ownedTotal := 0
	for p, lp := range plan.Local {
		ownedTotal += len(lp.Owned)
		// Owned and halo are ascending and local indices invert correctly.
		for i, v := range lp.Owned {
			if lp.LocalOf(v) != int32(i) {
				t.Fatalf("part %d: owned %d local index %d, want %d", p, v, lp.LocalOf(v), i)
			}
			if plan.Parts[v] != int32(p) {
				t.Fatalf("part %d claims node %d labeled %d", p, v, plan.Parts[v])
			}
		}
		for i, h := range lp.Halo {
			if lp.LocalOf(h) != int32(len(lp.Owned)+i) {
				t.Fatalf("part %d: halo %d bad local index", p, h)
			}
			if plan.Parts[h] == int32(p) {
				t.Fatalf("part %d: halo %d is owned", p, h)
			}
		}
		// Every local row reproduces the global row bitwise: same weights,
		// same entry order, columns mapping back to the same global ids.
		for i, v := range lp.Owned {
			gn, gw := g.Neighbors(int(v)), g.Weights(int(v))
			ln, lw := lp.Adj.Neighbors(i), lp.Adj.Weights(i)
			if len(gn) != len(ln) {
				t.Fatalf("part %d row %d: %d entries, global %d", p, i, len(ln), len(gn))
			}
			for j := range gn {
				if lp.LocalOf(gn[j]) != ln[j] || gw[j] != lw[j] {
					t.Fatalf("part %d row %d entry %d: local (%d,%v) vs global (%d,%v)",
						p, i, j, ln[j], lw[j], gn[j], gw[j])
				}
			}
		}
		// Routes cover the halo exactly once, sources owned by the peer.
		covered := 0
		for q, rt := range lp.In {
			if len(rt.Src) != len(rt.Dst) {
				t.Fatalf("part %d route from %d: src/dst mismatch", p, q)
			}
			covered += len(rt.Dst)
			for i := range rt.Src {
				gsrc := plan.Local[q].Owned[rt.Src[i]]
				if lp.Halo[int(rt.Dst[i])-len(lp.Owned)] != gsrc {
					t.Fatalf("part %d route from %d entry %d routes wrong vertex", p, q, i)
				}
			}
		}
		if covered != len(lp.Halo) {
			t.Fatalf("part %d: routes cover %d of %d halo rows", p, covered, len(lp.Halo))
		}
	}
	if ownedTotal != g.Rows {
		t.Fatalf("owned sets cover %d of %d nodes", ownedTotal, g.Rows)
	}
	if plan.EdgeCut <= 0 {
		t.Fatalf("connected graph, zero cut")
	}
	if got := plan.TotalHaloBytes(8) % 32; got != 0 {
		t.Fatalf("halo bytes not a multiple of row bytes: %d", plan.TotalHaloBytes(8))
	}
}
