package graph

import "fmt"

// Batch merges a list of small graphs into one block-diagonal graph, the
// DGL "graph batching" mechanism the paper highlights for Tree-LSTM, k-GNN
// and DeepGCN molecular workloads: many small graphs become one kernel-sized
// graph so per-kernel launch overheads amortize.
type Batch struct {
	// Adj is the block-diagonal adjacency over all batched nodes.
	Adj *CSR
	// GraphID maps each batched node to the index of its source graph.
	GraphID []int32
	// NodeOffset[i] is the first batched-node index of graph i;
	// NodeOffset[len(graphs)] == total nodes.
	NodeOffset []int32
}

// NewBatch builds the block-diagonal batch of square adjacencies.
func NewBatch(graphs []*CSR) *Batch {
	totalNodes := 0
	totalEdges := 0
	for i, g := range graphs {
		if g.Rows != g.Cols {
			panic(fmt.Sprintf("graph: batch member %d is not square (%dx%d)", i, g.Rows, g.Cols))
		}
		totalNodes += g.Rows
		totalEdges += g.NNZ()
	}
	edges := make([]Edge, 0, totalEdges)
	graphID := make([]int32, totalNodes)
	offsets := make([]int32, len(graphs)+1)
	base := int32(0)
	for i, g := range graphs {
		offsets[i] = base
		for dst := 0; dst < g.Rows; dst++ {
			graphID[base+int32(dst)] = int32(i)
			for _, src := range g.Neighbors(dst) {
				edges = append(edges, Edge{Src: base + src, Dst: base + int32(dst)})
			}
		}
		base += int32(g.Rows)
	}
	offsets[len(graphs)] = base
	return &Batch{
		Adj:        FromEdges(totalNodes, totalNodes, edges),
		GraphID:    graphID,
		NodeOffset: offsets,
	}
}

// NumGraphs returns the number of batched graphs.
func (b *Batch) NumGraphs() int { return len(b.NodeOffset) - 1 }

// NumNodes returns the total batched node count.
func (b *Batch) NumNodes() int { return b.Adj.Rows }

// GraphNodes returns the [start, end) batched-node range of graph i.
func (b *Batch) GraphNodes(i int) (int32, int32) {
	return b.NodeOffset[i], b.NodeOffset[i+1]
}
