// Package graph provides the graph data structures and samplers the GNNMark
// workloads run on: CSR adjacency (homogeneous graphs), heterogeneous
// multi-relation graphs, batched graph collections, trees, random-walk
// neighbor sampling, and k-tuple graph construction for k-GNNs.
package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// CSR is a sparse matrix / adjacency structure in compressed sparse row
// form. Rows = destination nodes, columns = source nodes, so that
// SpMM(CSR, X) aggregates neighbor features into each row, matching the
// message-passing convention of DGL/PyG.
type CSR struct {
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// RowPtr has Rows+1 entries; row i's neighbors occupy
	// ColIdx[RowPtr[i]:RowPtr[i+1]].
	RowPtr []int32
	// ColIdx holds column indices per row, sorted ascending within a row.
	ColIdx []int32
	// Vals holds edge weights; nil means implicit all-ones.
	Vals []float32
}

// Edge is a directed (src -> dst) pair used by builders.
type Edge struct{ Src, Dst int32 }

// FromEdges builds a CSR with the given dimensions from a directed edge
// list. Duplicate edges are kept. Column indices are sorted within rows.
func FromEdges(rows, cols int, edges []Edge) *CSR {
	rowPtr := make([]int32, rows+1)
	for _, e := range edges {
		if e.Dst < 0 || int(e.Dst) >= rows || e.Src < 0 || int(e.Src) >= cols {
			panic(fmt.Sprintf("graph: edge (%d->%d) out of bounds for %dx%d", e.Src, e.Dst, rows, cols))
		}
		rowPtr[e.Dst+1]++
	}
	for i := 0; i < rows; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, len(edges))
	cursor := make([]int32, rows)
	for _, e := range edges {
		p := rowPtr[e.Dst] + cursor[e.Dst]
		colIdx[p] = e.Src
		cursor[e.Dst]++
	}
	g := &CSR{Rows: rows, Cols: cols, RowPtr: rowPtr, ColIdx: colIdx}
	g.sortRows()
	return g
}

func (g *CSR) sortRows() {
	for i := 0; i < g.Rows; i++ {
		row := g.ColIdx[g.RowPtr[i]:g.RowPtr[i+1]]
		sort.Slice(row, func(a, b int) bool { return row[a] < row[b] })
	}
}

// NNZ returns the number of stored entries (edges).
func (g *CSR) NNZ() int { return len(g.ColIdx) }

// Degree returns the in-degree (row length) of node i.
func (g *CSR) Degree(i int) int { return int(g.RowPtr[i+1] - g.RowPtr[i]) }

// Neighbors returns node i's neighbor slice (shared storage; do not mutate).
func (g *CSR) Neighbors(i int) []int32 { return g.ColIdx[g.RowPtr[i]:g.RowPtr[i+1]] }

// Weights returns the weight slice of row i, or nil when unweighted.
func (g *CSR) Weights(i int) []float32 {
	if g.Vals == nil {
		return nil
	}
	return g.Vals[g.RowPtr[i]:g.RowPtr[i+1]]
}

// HasEdge reports whether (src -> dst) is present, via binary search.
func (g *CSR) HasEdge(src, dst int32) bool {
	row := g.Neighbors(int(dst))
	i := sort.Search(len(row), func(k int) bool { return row[k] >= src })
	return i < len(row) && row[i] == src
}

// Transpose returns the reverse graph (src/dst swapped), carrying weights.
func (g *CSR) Transpose() *CSR {
	rowPtr := make([]int32, g.Cols+1)
	for _, c := range g.ColIdx {
		rowPtr[c+1]++
	}
	for i := 0; i < g.Cols; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	colIdx := make([]int32, len(g.ColIdx))
	var vals []float32
	if g.Vals != nil {
		vals = make([]float32, len(g.Vals))
	}
	cursor := make([]int32, g.Cols)
	for dst := 0; dst < g.Rows; dst++ {
		for p := g.RowPtr[dst]; p < g.RowPtr[dst+1]; p++ {
			src := g.ColIdx[p]
			q := rowPtr[src] + cursor[src]
			colIdx[q] = int32(dst)
			if vals != nil {
				vals[q] = g.Vals[p]
			}
			cursor[src]++
		}
	}
	t := &CSR{Rows: g.Cols, Cols: g.Rows, RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
	// Rows were built in ascending dst order, so they are already sorted.
	return t
}

// WithSelfLoops returns a copy of a square CSR with (i,i) added to every row
// that lacks it.
func (g *CSR) WithSelfLoops() *CSR {
	if g.Rows != g.Cols {
		panic("graph: self loops require a square adjacency")
	}
	edges := make([]Edge, 0, g.NNZ()+g.Rows)
	for dst := 0; dst < g.Rows; dst++ {
		has := false
		for _, src := range g.Neighbors(dst) {
			edges = append(edges, Edge{Src: src, Dst: int32(dst)})
			if int(src) == dst {
				has = true
			}
		}
		if !has {
			edges = append(edges, Edge{Src: int32(dst), Dst: int32(dst)})
		}
	}
	return FromEdges(g.Rows, g.Cols, edges)
}

// NormalizeGCN returns the symmetrically normalized adjacency with self
// loops, D^{-1/2}(A+I)D^{-1/2}: the Kipf-Welling GCN propagation operator.
func (g *CSR) NormalizeGCN() *CSR {
	a := g.WithSelfLoops()
	deg := make([]float32, a.Rows)
	for i := 0; i < a.Rows; i++ {
		deg[i] = float32(a.Degree(i))
	}
	a.Vals = make([]float32, a.NNZ())
	for dst := 0; dst < a.Rows; dst++ {
		for p := a.RowPtr[dst]; p < a.RowPtr[dst+1]; p++ {
			src := a.ColIdx[p]
			a.Vals[p] = 1 / sqrt32(deg[dst]*deg[src])
		}
	}
	return a
}

// NormalizeRW returns the row-normalized (random-walk) adjacency with self
// loops, D^{-1}(A+I): mean aggregation.
func (g *CSR) NormalizeRW() *CSR {
	a := g.WithSelfLoops()
	a.Vals = make([]float32, a.NNZ())
	for dst := 0; dst < a.Rows; dst++ {
		d := float32(a.Degree(dst))
		for p := a.RowPtr[dst]; p < a.RowPtr[dst+1]; p++ {
			a.Vals[p] = 1 / d
		}
	}
	return a
}

func sqrt32(x float32) float32 {
	if x <= 0 {
		return 1
	}
	return float32(math.Sqrt(float64(x)))
}

// Validate checks structural invariants and returns a descriptive error for
// the first violation (nil when well-formed).
func (g *CSR) Validate() error {
	if len(g.RowPtr) != g.Rows+1 {
		return fmt.Errorf("graph: RowPtr length %d, want %d", len(g.RowPtr), g.Rows+1)
	}
	if g.RowPtr[0] != 0 {
		return fmt.Errorf("graph: RowPtr[0] = %d, want 0", g.RowPtr[0])
	}
	if int(g.RowPtr[g.Rows]) != len(g.ColIdx) {
		return fmt.Errorf("graph: RowPtr end %d != nnz %d", g.RowPtr[g.Rows], len(g.ColIdx))
	}
	if g.Vals != nil && len(g.Vals) != len(g.ColIdx) {
		return fmt.Errorf("graph: Vals length %d != nnz %d", len(g.Vals), len(g.ColIdx))
	}
	for i := 0; i < g.Rows; i++ {
		if g.RowPtr[i] > g.RowPtr[i+1] {
			return fmt.Errorf("graph: RowPtr not monotone at row %d", i)
		}
		if g.RowPtr[i] < 0 || int(g.RowPtr[i+1]) > len(g.ColIdx) {
			return fmt.Errorf("graph: RowPtr out of range at row %d", i)
		}
		prev := int32(-1)
		for _, c := range g.Neighbors(i) {
			if c < 0 || int(c) >= g.Cols {
				return fmt.Errorf("graph: column %d out of range in row %d", c, i)
			}
			if c < prev {
				return fmt.Errorf("graph: row %d not sorted", i)
			}
			prev = c
		}
	}
	return nil
}

// RandomGNP returns an Erdős–Rényi directed graph on n nodes where each
// possible edge appears independently with probability p (self loops
// excluded). Deterministic per rng.
func RandomGNP(rng *rand.Rand, n int, p float64) *CSR {
	var edges []Edge
	// Geometric skipping: expected O(n^2 p) work.
	total := int64(n) * int64(n)
	pos := int64(-1)
	for {
		// Draw the gap to the next edge.
		u := rng.Float64()
		if u <= 0 {
			u = 1e-12
		}
		gap := int64(math.Log(u)/math.Log(1-p)) + 1
		pos += gap
		if pos >= total {
			break
		}
		src := int32(pos / int64(n))
		dst := int32(pos % int64(n))
		if src != dst {
			edges = append(edges, Edge{Src: src, Dst: dst})
		}
	}
	return FromEdges(n, n, edges)
}

// PreferentialAttachment returns a Barabási–Albert-style undirected graph
// (each edge stored in both directions) on n nodes with m attachments per
// new node: the degree-skewed shape of social and citation graphs.
func PreferentialAttachment(rng *rand.Rand, n, m int) *CSR {
	if n < m+1 {
		panic("graph: PreferentialAttachment requires n > m")
	}
	var edges []Edge
	// Repeated-node list for degree-proportional sampling.
	targets := make([]int32, 0, 2*n*m)
	for v := 0; v < m+1; v++ {
		for u := 0; u < v; u++ {
			edges = append(edges, Edge{Src: int32(u), Dst: int32(v)}, Edge{Src: int32(v), Dst: int32(u)})
			targets = append(targets, int32(u), int32(v))
		}
	}
	for v := m + 1; v < n; v++ {
		seen := map[int32]bool{}
		for len(seen) < m {
			t := targets[rng.Intn(len(targets))]
			if t != int32(v) {
				seen[t] = true
			}
		}
		// Attach in sorted order: map iteration order would make the
		// generated graph (and everything trained on it) vary run to run.
		picked := make([]int32, 0, m)
		for u := range seen {
			picked = append(picked, u)
		}
		sort.Slice(picked, func(i, j int) bool { return picked[i] < picked[j] })
		for _, u := range picked {
			edges = append(edges, Edge{Src: u, Dst: int32(v)}, Edge{Src: int32(v), Dst: u})
			targets = append(targets, u, int32(v))
		}
	}
	return FromEdges(n, n, edges)
}
