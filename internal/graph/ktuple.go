package graph

import "fmt"

// KTupleGraph constructs the higher-order graph used by hierarchical k-GNNs
// (Morris et al.): nodes are the connected k-element subsets of the input
// graph's vertices, and two subsets are adjacent when they differ in exactly
// one vertex. The "local" variant here only materializes connected subsets,
// which is the practical construction used by the reference implementation.
//
// TupleIndex maps each k-tuple node back to its member vertices so feature
// initialization can pool base-graph features.
type KTupleGraph struct {
	Adj *CSR
	// Tuples[i] lists the k member vertices of higher-order node i, sorted.
	Tuples [][]int32
}

// BuildKTuple builds the k-tuple graph for k = 2 or 3 over a square
// undirected adjacency. Larger k is rejected: the construction is
// exponential and the paper's suite stops at 3 (KGNNH).
func BuildKTuple(g *CSR, k int) *KTupleGraph {
	if g.Rows != g.Cols {
		panic("graph: BuildKTuple requires a square adjacency")
	}
	switch k {
	case 2:
		return build2Tuple(g)
	case 3:
		return build3Tuple(g)
	default:
		panic(fmt.Sprintf("graph: BuildKTuple supports k=2,3, got %d", k))
	}
}

func build2Tuple(g *CSR) *KTupleGraph {
	n := g.Rows
	id := map[[2]int32]int32{}
	var tuples [][]int32
	add := func(a, b int32) {
		if a > b {
			a, b = b, a
		}
		key := [2]int32{a, b}
		if _, ok := id[key]; !ok {
			id[key] = int32(len(tuples))
			tuples = append(tuples, []int32{a, b})
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if u != int32(v) {
				add(int32(v), u)
			}
		}
	}
	// Two 2-tuples are adjacent when they share exactly one vertex.
	var edges []Edge
	byVertex := make([][]int32, n)
	for tid, t := range tuples {
		byVertex[t[0]] = append(byVertex[t[0]], int32(tid))
		byVertex[t[1]] = append(byVertex[t[1]], int32(tid))
	}
	for _, members := range byVertex {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				edges = append(edges,
					Edge{Src: members[i], Dst: members[j]},
					Edge{Src: members[j], Dst: members[i]})
			}
		}
	}
	return &KTupleGraph{Adj: dedupeEdges(len(tuples), edges), Tuples: tuples}
}

func build3Tuple(g *CSR) *KTupleGraph {
	n := g.Rows
	id := map[[3]int32]int32{}
	var tuples [][]int32
	add := func(a, b, c int32) {
		t := sort3(a, b, c)
		if t[0] == t[1] || t[1] == t[2] {
			return
		}
		if _, ok := id[t]; !ok {
			id[t] = int32(len(tuples))
			tuples = append(tuples, []int32{t[0], t[1], t[2]})
		}
	}
	// Connected 3-subsets: an edge (u,v) plus a neighbor of either endpoint.
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(v) {
			if u == int32(v) {
				continue
			}
			for _, w := range g.Neighbors(v) {
				if w != u && w != int32(v) {
					add(int32(v), u, w)
				}
			}
			for _, w := range g.Neighbors(int(u)) {
				if w != int32(v) && w != u {
					add(int32(v), u, w)
				}
			}
		}
	}
	var edges []Edge
	pairIndex := map[[2]int32][]int32{}
	for tid, t := range tuples {
		pairs := [3][2]int32{{t[0], t[1]}, {t[0], t[2]}, {t[1], t[2]}}
		for _, p := range pairs {
			pairIndex[p] = append(pairIndex[p], int32(tid))
		}
	}
	for _, members := range pairIndex {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				edges = append(edges,
					Edge{Src: members[i], Dst: members[j]},
					Edge{Src: members[j], Dst: members[i]})
			}
		}
	}
	return &KTupleGraph{Adj: dedupeEdges(len(tuples), edges), Tuples: tuples}
}

func sort3(a, b, c int32) [3]int32 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]int32{a, b, c}
}

func dedupeEdges(n int, edges []Edge) *CSR {
	seen := map[[2]int32]bool{}
	out := edges[:0]
	for _, e := range edges {
		key := [2]int32{e.Src, e.Dst}
		if !seen[key] {
			seen[key] = true
			out = append(out, e)
		}
	}
	return FromEdges(n, n, out)
}
