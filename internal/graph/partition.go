package graph

// PartitionBFS splits a square adjacency into k balanced parts by seeded
// BFS region growing: a lightweight stand-in for METIS-style partitioners.
// The paper's multi-GPU takeaway is that "fine-grained graph partitioning
// ... proposed in graph-centric GNN frameworks such as ROC and NeuGraph
// should be adopted"; this is the primitive that study needs.
//
// Returns the part id per node and the edge cut (edges whose endpoints land
// in different parts).
func PartitionBFS(g *CSR, k int) (parts []int32, edgeCut int) {
	if g.Rows != g.Cols {
		panic("graph: PartitionBFS requires a square adjacency")
	}
	if k <= 0 {
		panic("graph: PartitionBFS requires k > 0")
	}
	n := g.Rows
	parts = make([]int32, n)
	for i := range parts {
		parts[i] = -1
	}
	if n == 0 {
		return parts, 0
	}
	target := (n + k - 1) / k
	rev := g.Transpose()

	part := int32(0)
	size := 0
	var queue []int32
	next := 0 // next unassigned node scan cursor
	for assigned := 0; assigned < n; {
		if len(queue) == 0 {
			// Seed a new BFS from the lowest unassigned node.
			for next < n && parts[next] >= 0 {
				next++
			}
			queue = append(queue, int32(next))
			parts[next] = part
			size++
			assigned++
		}
		v := queue[0]
		queue = queue[1:]
		grow := func(nbrs []int32) {
			for _, nb := range nbrs {
				if parts[nb] < 0 && size < target {
					parts[nb] = part
					size++
					assigned++
					queue = append(queue, nb)
				}
			}
		}
		grow(g.Neighbors(int(v)))
		grow(rev.Neighbors(int(v)))
		if size >= target && part < int32(k-1) {
			part++
			size = 0
			queue = queue[:0]
		}
	}

	for dst := 0; dst < n; dst++ {
		for _, src := range g.Neighbors(dst) {
			if parts[src] != parts[dst] {
				edgeCut++
			}
		}
	}
	return parts, edgeCut
}

// PartitionSizes returns the node count of each part.
func PartitionSizes(parts []int32, k int) []int {
	sizes := make([]int, k)
	for _, p := range parts {
		sizes[p]++
	}
	return sizes
}
