package graph

import "math/rand"

// PartitionBFS splits a square adjacency into k balanced parts by seeded
// BFS region growing: a lightweight stand-in for METIS-style partitioners.
// The paper's multi-GPU takeaway is that "fine-grained graph partitioning
// ... proposed in graph-centric GNN frameworks such as ROC and NeuGraph
// should be adopted"; this is the primitive that study needs.
//
// Returns the part id per node and the edge cut (edges whose endpoints land
// in different parts).
//
// Degenerate inputs are handled gracefully rather than by caller
// discipline: an empty graph returns an empty labeling with zero cut, and
// k > n yields singleton parts (node i in part i, parts n..k-1 empty).
// Non-square adjacencies and k <= 0 remain programmer errors and panic.
func PartitionBFS(g *CSR, k int) (parts []int32, edgeCut int) {
	if g.Rows != g.Cols {
		panic("graph: PartitionBFS requires a square adjacency")
	}
	if k <= 0 {
		panic("graph: PartitionBFS requires k > 0")
	}
	n := g.Rows
	parts = make([]int32, n)
	for i := range parts {
		parts[i] = -1
	}
	if n == 0 {
		return parts, 0
	}
	if k > n {
		// More parts than nodes: every node is its own part.
		for i := range parts {
			parts[i] = int32(i)
		}
		return parts, countCut(g, parts)
	}
	target := (n + k - 1) / k
	rev := g.Transpose()

	part := int32(0)
	size := 0
	var queue []int32
	next := 0 // next unassigned node scan cursor
	for assigned := 0; assigned < n; {
		if len(queue) == 0 {
			// Seed a new BFS from the lowest unassigned node.
			for next < n && parts[next] >= 0 {
				next++
			}
			queue = append(queue, int32(next))
			parts[next] = part
			size++
			assigned++
		}
		v := queue[0]
		queue = queue[1:]
		grow := func(nbrs []int32) {
			for _, nb := range nbrs {
				if parts[nb] < 0 && size < target {
					parts[nb] = part
					size++
					assigned++
					queue = append(queue, nb)
				}
			}
		}
		grow(g.Neighbors(int(v)))
		grow(rev.Neighbors(int(v)))
		if size >= target && part < int32(k-1) {
			part++
			size = 0
			queue = queue[:0]
		}
	}

	return parts, countCut(g, parts)
}

// countCut counts directed edges whose endpoints carry different labels.
func countCut(g *CSR, parts []int32) int {
	cut := 0
	for dst := 0; dst < g.Rows; dst++ {
		for _, src := range g.Neighbors(dst) {
			if parts[src] != parts[dst] {
				cut++
			}
		}
	}
	return cut
}

// PartitionRandom splits a square adjacency into k parts by a seeded
// uniform-random node assignment (round-robin base so every part is
// populated, then a deterministic shuffle). It is the locality-free
// baseline for edge-cut sensitivity studies: same balance as PartitionBFS,
// none of the BFS locality, so the cut — and with it the halo volume of
// partitioned training — is near the random-split ceiling. Degenerate
// inputs follow PartitionBFS's contract.
func PartitionRandom(g *CSR, k int, seed int64) (parts []int32, edgeCut int) {
	if g.Rows != g.Cols {
		panic("graph: PartitionRandom requires a square adjacency")
	}
	if k <= 0 {
		panic("graph: PartitionRandom requires k > 0")
	}
	n := g.Rows
	parts = make([]int32, n)
	for i := range parts {
		parts[i] = int32(i % k)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) { parts[i], parts[j] = parts[j], parts[i] })
	return parts, countCut(g, parts)
}

// PartitionSizes returns the node count of each part.
func PartitionSizes(parts []int32, k int) []int {
	sizes := make([]int, k)
	for _, p := range parts {
		sizes[p]++
	}
	return sizes
}
