package graph

import (
	"math/rand"
	"sort"
)

// RandomWalkSampler implements PinSAGE-style importance-based neighbor
// sampling on a bipartite item-user-item graph: short random walks from each
// seed item, alternating item->user->item hops, with visit counts ranking
// the most important item neighbors.
type RandomWalkSampler struct {
	// ItemToUser rows are users reached from items (user <- item edges
	// reversed as needed); UserToItem the converse.
	ItemToUser *CSR // rows: users, cols: items? see NewRandomWalkSampler
	UserToItem *CSR

	// NumWalks is the number of walks per seed; WalkLength the number of
	// item-to-item hops per walk; TopK the number of neighbors kept.
	NumWalks   int
	WalkLength int
	TopK       int
}

// NewRandomWalkSampler builds a sampler from the two directed relations of
// a bipartite graph: userByItem has rows=users/cols=items ("item liked-by
// user", so Neighbors(user) lists that user's items is the transpose...).
// To keep orientation unambiguous the sampler takes:
//
//	itemUsers: rows=items, cols=users — Neighbors(item) = users who touched it
//	userItems: rows=users, cols=items — Neighbors(user) = items they touched
func NewRandomWalkSampler(itemUsers, userItems *CSR, numWalks, walkLength, topK int) *RandomWalkSampler {
	return &RandomWalkSampler{
		ItemToUser: itemUsers,
		UserToItem: userItems,
		NumWalks:   numWalks,
		WalkLength: walkLength,
		TopK:       topK,
	}
}

// NeighborSample holds the sampled neighborhood of one seed: neighbor item
// ids with normalized importance weights, ordered by decreasing weight.
type NeighborSample struct {
	Seed      int32
	Neighbors []int32
	Weights   []float32
}

// Sample runs random walks from seed and returns its TopK item neighbors by
// visit count. Walk state is drawn from rng (deterministic per seed+rng).
func (s *RandomWalkSampler) Sample(rng *rand.Rand, seed int32) NeighborSample {
	return RankVisits(seed, s.WalkTrace(rng, seed), s.TopK)
}

// WalkTrace runs the seed's random walks and returns the raw visit list
// (every item reached, in walk order). The GPU sampler pipeline sorts and
// counts this trace on-device; callers forward it to the engine's sort so
// those kernels appear in the profile.
func (s *RandomWalkSampler) WalkTrace(rng *rand.Rand, seed int32) []int32 {
	var visits []int32
	for w := 0; w < s.NumWalks; w++ {
		cur := seed
		for h := 0; h < s.WalkLength; h++ {
			users := s.ItemToUser.Neighbors(int(cur))
			if len(users) == 0 {
				break
			}
			u := users[rng.Intn(len(users))]
			items := s.UserToItem.Neighbors(int(u))
			if len(items) == 0 {
				break
			}
			cur = items[rng.Intn(len(items))]
			if cur != seed {
				visits = append(visits, cur)
			}
		}
	}
	return visits
}

// RankVisits counts a visit trace and returns the topK most-visited items
// with normalized importance weights.
func RankVisits(seed int32, trace []int32, topK int) NeighborSample {
	visits := map[int32]int{}
	for _, v := range trace {
		visits[v]++
	}
	type kv struct {
		item  int32
		count int
	}
	ranked := make([]kv, 0, len(visits))
	for it, c := range visits {
		ranked = append(ranked, kv{it, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].item < ranked[j].item
	})
	k := topK
	if k > len(ranked) {
		k = len(ranked)
	}
	out := NeighborSample{Seed: seed}
	total := 0
	for i := 0; i < k; i++ {
		total += ranked[i].count
	}
	for i := 0; i < k; i++ {
		out.Neighbors = append(out.Neighbors, ranked[i].item)
		out.Weights = append(out.Weights, float32(ranked[i].count)/float32(total))
	}
	return out
}

// UniformNeighbors samples up to k neighbors of node v uniformly without
// replacement (GraphSAGE-style fan-out sampling).
func UniformNeighbors(rng *rand.Rand, g *CSR, v int32, k int) []int32 {
	nbrs := g.Neighbors(int(v))
	if len(nbrs) <= k {
		out := make([]int32, len(nbrs))
		copy(out, nbrs)
		return out
	}
	// Partial Fisher-Yates over a copy.
	tmp := make([]int32, len(nbrs))
	copy(tmp, nbrs)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(len(tmp)-i)
		tmp[i], tmp[j] = tmp[j], tmp[i]
	}
	return tmp[:k]
}
