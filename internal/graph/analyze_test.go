package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegreeStatsRegularGraph(t *testing.T) {
	// Undirected cycle: every node has in-degree 2.
	n := 10
	var edges []Edge
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		edges = append(edges, Edge{Src: int32(i), Dst: int32(j)}, Edge{Src: int32(j), Dst: int32(i)})
	}
	st := Degrees(FromEdges(n, n, edges))
	if st.Min != 2 || st.Max != 2 || st.Mean != 2 || st.P99 != 2 {
		t.Fatalf("regular graph stats wrong: %+v", st)
	}
	if st.Gini > 1e-9 {
		t.Fatalf("regular graph Gini = %g, want 0", st.Gini)
	}
}

func TestDegreeStatsSkewedGraph(t *testing.T) {
	// A star graph is maximally skewed.
	n := 50
	var edges []Edge
	for i := 1; i < n; i++ {
		edges = append(edges, Edge{Src: int32(i), Dst: 0})
	}
	st := Degrees(FromEdges(n, n, edges))
	if st.Max != n-1 || st.P50 != 0 {
		t.Fatalf("star stats wrong: %+v", st)
	}
	if st.Gini < 0.9 {
		t.Fatalf("star Gini = %g, want near 1", st.Gini)
	}
	// Preferential attachment sits between regular and star.
	pa := Degrees(PreferentialAttachment(rand.New(rand.NewSource(1)), 300, 3))
	if pa.Gini <= 0.05 || pa.Gini >= 0.9 {
		t.Fatalf("scale-free Gini = %g, want intermediate skew", pa.Gini)
	}
	if Degrees(FromEdges(0, 0, nil)).Mean != 0 {
		t.Fatal("empty graph stats must be zero")
	}
}

func TestConnectedComponents(t *testing.T) {
	// Two triangles plus an isolated node: 3 components.
	var edges []Edge
	tri := func(base int32) {
		for i := int32(0); i < 3; i++ {
			j := (i + 1) % 3
			edges = append(edges,
				Edge{Src: base + i, Dst: base + j},
				Edge{Src: base + j, Dst: base + i})
		}
	}
	tri(0)
	tri(3)
	g := FromEdges(7, 7, edges)
	labels, count := ConnectedComponents(g)
	if count != 3 {
		t.Fatalf("components = %d, want 3", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("first triangle split")
	}
	if labels[3] != labels[4] || labels[0] == labels[3] {
		t.Fatal("triangles merged or split")
	}
	if labels[6] == labels[0] || labels[6] == labels[3] {
		t.Fatal("isolated node joined a triangle")
	}
}

func TestConnectedComponentsDirectedIsWeak(t *testing.T) {
	// 0 -> 1 -> 2 with no back edges is still one weak component.
	g := FromEdges(3, 3, []Edge{{Src: 0, Dst: 1}, {Src: 1, Dst: 2}})
	_, count := ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("weak components = %d, want 1", count)
	}
}

func TestConnectedComponentsProperty(t *testing.T) {
	// Property: endpoints of every edge share a label; labels are dense.
	f := func(raw []uint8) bool {
		n := 12
		var edges []Edge
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{Src: int32(raw[i] % uint8(n)), Dst: int32(raw[i+1] % uint8(n))})
		}
		g := FromEdges(n, n, edges)
		labels, count := ConnectedComponents(g)
		for dst := 0; dst < n; dst++ {
			for _, src := range g.Neighbors(dst) {
				if labels[src] != labels[dst] {
					return false
				}
			}
		}
		seenMax := int32(-1)
		for _, l := range labels {
			if l < 0 || int(l) >= count {
				return false
			}
			if l > seenMax {
				seenMax = l
			}
		}
		return int(seenMax) == count-1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := WattsStrogatz(rng, 100, 4, 0.1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Symmetric storage.
	for dst := 0; dst < g.Rows; dst++ {
		for _, src := range g.Neighbors(dst) {
			if !g.HasEdge(int32(dst), src) {
				t.Fatalf("edge (%d,%d) not symmetric", src, dst)
			}
		}
	}
	// One connected component at low beta and k=4.
	if _, count := ConnectedComponents(g); count != 1 {
		t.Fatalf("small-world graph fragmented into %d components", count)
	}
	st := Degrees(g)
	if st.Mean < 3 || st.Mean > 5 {
		t.Fatalf("mean degree %.1f, want ~4", st.Mean)
	}
	// beta=0 gives the pure lattice: perfectly regular.
	lattice := WattsStrogatz(rand.New(rand.NewSource(1)), 40, 4, 0)
	if s := Degrees(lattice); s.Min != 4 || s.Max != 4 {
		t.Fatalf("lattice degrees %+v, want all 4", s)
	}
}

func TestWattsStrogatzRejectsBadParams(t *testing.T) {
	for _, bad := range [][3]int{{10, 3, 0}, {10, 0, 0}, {4, 4, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("params %v should panic", bad)
				}
			}()
			WattsStrogatz(rand.New(rand.NewSource(1)), bad[0], bad[1], 0.1)
		}()
	}
}
