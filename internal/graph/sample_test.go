package graph

import (
	"math/rand"
	"testing"
)

// bipartiteFixture builds a small item-user graph: items {0..3}, users
// {0..2}. User 0 touched items {0,1}, user 1 items {1,2}, user 2 items {2,3}.
func bipartiteFixture() (itemUsers, userItems *CSR) {
	ui := []Edge{ // src=user, dst=item
		{0, 0}, {0, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 3},
	}
	itemUsers = FromEdges(4, 3, ui) // rows: items, cols: users
	rev := make([]Edge, len(ui))
	for i, e := range ui {
		rev[i] = Edge{Src: e.Dst, Dst: e.Src}
	}
	userItems = FromEdges(3, 4, rev) // rows: users, cols: items
	return
}

func TestRandomWalkSample(t *testing.T) {
	itemUsers, userItems := bipartiteFixture()
	s := NewRandomWalkSampler(itemUsers, userItems, 50, 3, 2)
	rng := rand.New(rand.NewSource(9))
	got := s.Sample(rng, 1)

	if got.Seed != 1 {
		t.Fatal("seed mangled")
	}
	if len(got.Neighbors) == 0 || len(got.Neighbors) > 2 {
		t.Fatalf("neighbors = %v, want 1..2", got.Neighbors)
	}
	// Item 1 can reach items 0 and 2 in one hop; never itself.
	for _, nb := range got.Neighbors {
		if nb == 1 {
			t.Fatal("seed must not be its own neighbor")
		}
	}
	// Weights normalized and decreasing.
	var sum float32
	for i, w := range got.Weights {
		sum += w
		if i > 0 && w > got.Weights[i-1] {
			t.Fatal("weights must be ranked descending")
		}
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("weights sum = %g, want 1", sum)
	}
}

func TestRandomWalkDeterministicPerSeed(t *testing.T) {
	itemUsers, userItems := bipartiteFixture()
	s := NewRandomWalkSampler(itemUsers, userItems, 20, 2, 3)
	a := s.Sample(rand.New(rand.NewSource(4)), 2)
	b := s.Sample(rand.New(rand.NewSource(4)), 2)
	if len(a.Neighbors) != len(b.Neighbors) {
		t.Fatal("sampler not deterministic")
	}
	for i := range a.Neighbors {
		if a.Neighbors[i] != b.Neighbors[i] {
			t.Fatal("sampler not deterministic")
		}
	}
}

func TestRandomWalkIsolatedItem(t *testing.T) {
	// An item with no users yields an empty sample rather than a panic.
	itemUsers := FromEdges(2, 1, []Edge{{Src: 0, Dst: 0}}) // item 1 isolated
	userItems := FromEdges(1, 2, []Edge{{Src: 0, Dst: 0}})
	s := NewRandomWalkSampler(itemUsers, userItems, 10, 2, 3)
	got := s.Sample(rand.New(rand.NewSource(1)), 1)
	if len(got.Neighbors) != 0 {
		t.Fatalf("isolated item produced neighbors %v", got.Neighbors)
	}
}

func TestUniformNeighbors(t *testing.T) {
	g := FromEdges(4, 4, []Edge{{1, 0}, {2, 0}, {3, 0}})
	rng := rand.New(rand.NewSource(2))

	all := UniformNeighbors(rng, g, 0, 10)
	if len(all) != 3 {
		t.Fatalf("want all 3 neighbors, got %v", all)
	}
	some := UniformNeighbors(rng, g, 0, 2)
	if len(some) != 2 {
		t.Fatalf("want 2 sampled neighbors, got %v", some)
	}
	seen := map[int32]bool{}
	for _, v := range some {
		if seen[v] {
			t.Fatal("sampling must be without replacement")
		}
		seen[v] = true
		if v < 1 || v > 3 {
			t.Fatalf("sampled non-neighbor %d", v)
		}
	}
	if got := UniformNeighbors(rng, g, 1, 4); len(got) != 0 {
		t.Fatalf("node with no in-edges returned %v", got)
	}
	// Original adjacency must be untouched by the shuffle.
	nb := g.Neighbors(0)
	if nb[0] != 1 || nb[1] != 2 || nb[2] != 3 {
		t.Fatal("UniformNeighbors mutated the CSR")
	}
}
