package graph

import (
	"math"
	"math/rand"
	"sort"
)

// DegreeStats summarizes a CSR's in-degree distribution: the knobs that
// drive GNN kernel behavior (SpMM row lengths, gather fan-in, load balance).
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// P50, P90, P99 are degree percentiles.
	P50, P90, P99 int
	// Gini is the degree Gini coefficient in [0,1]: 0 = perfectly regular,
	// near 1 = extremely skewed (scale-free graphs score high).
	Gini float64
}

// Degrees computes the in-degree distribution statistics of g.
func Degrees(g *CSR) DegreeStats {
	if g.Rows == 0 {
		return DegreeStats{}
	}
	ds := make([]int, g.Rows)
	sum := 0
	for i := 0; i < g.Rows; i++ {
		ds[i] = g.Degree(i)
		sum += ds[i]
	}
	sort.Ints(ds)
	pct := func(p float64) int { return ds[int(p*float64(len(ds)-1))] }
	st := DegreeStats{
		Min:  ds[0],
		Max:  ds[len(ds)-1],
		Mean: float64(sum) / float64(g.Rows),
		P50:  pct(0.50),
		P90:  pct(0.90),
		P99:  pct(0.99),
	}
	// Gini over the sorted degree sequence.
	if sum > 0 {
		var cum float64
		for i, d := range ds {
			cum += float64(d) * float64(2*(i+1)-len(ds)-1)
		}
		st.Gini = cum / (float64(len(ds)) * float64(sum))
		st.Gini = math.Abs(st.Gini)
	}
	return st
}

// ConnectedComponents labels each node of a square adjacency with its
// weakly-connected-component id (0-based, in discovery order) and returns
// the labels plus the component count.
func ConnectedComponents(g *CSR) (labels []int32, count int) {
	if g.Rows != g.Cols {
		panic("graph: ConnectedComponents requires a square adjacency")
	}
	// Build the symmetric neighbor view once (weak connectivity).
	rev := g.Transpose()
	labels = make([]int32, g.Rows)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for start := 0; start < g.Rows; start++ {
		if labels[start] >= 0 {
			continue
		}
		id := int32(count)
		count++
		stack = append(stack[:0], int32(start))
		labels[start] = id
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nb := range g.Neighbors(int(v)) {
				if labels[nb] < 0 {
					labels[nb] = id
					stack = append(stack, nb)
				}
			}
			for _, nb := range rev.Neighbors(int(v)) {
				if labels[nb] < 0 {
					labels[nb] = id
					stack = append(stack, nb)
				}
			}
		}
	}
	return labels, count
}

// WattsStrogatz generates a small-world graph: a ring lattice where every
// node connects to its k nearest neighbors (k even), with each edge rewired
// to a random target with probability beta. Edges are stored both ways.
// Sensor and communication networks — the dynamic-graph domain of the paper
// — have this shape.
func WattsStrogatz(rng *rand.Rand, n, k int, beta float64) *CSR {
	if k%2 != 0 || k <= 0 || n <= k {
		panic("graph: WattsStrogatz requires even 0 < k < n")
	}
	type pair = [2]int32
	seen := map[pair]bool{}
	addEdge := func(u, v int32) bool {
		if u == v {
			return false
		}
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		if seen[pair{a, b}] {
			return false
		}
		seen[pair{a, b}] = true
		return true
	}
	for i := 0; i < n; i++ {
		for d := 1; d <= k/2; d++ {
			u, v := int32(i), int32((i+d)%n)
			if rng.Float64() < beta {
				// Rewire to a random target, keeping the source endpoint.
				for tries := 0; tries < 8; tries++ {
					w := int32(rng.Intn(n))
					if addEdge(u, w) {
						v = -1
						break
					}
				}
				if v == -1 {
					continue
				}
			}
			addEdge(u, v)
		}
	}
	edges := make([]Edge, 0, 2*len(seen))
	for p := range seen {
		edges = append(edges, Edge{Src: p[0], Dst: p[1]}, Edge{Src: p[1], Dst: p[0]})
	}
	return FromEdges(n, n, edges)
}
