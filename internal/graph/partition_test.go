package graph

import (
	"math/rand"
	"testing"
)

func TestPartitionBFSBalancedAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := PreferentialAttachment(rng, 400, 3)
	for _, k := range []int{1, 2, 4} {
		parts, cut := PartitionBFS(g, k)
		if len(parts) != g.Rows {
			t.Fatalf("k=%d: %d labels", k, len(parts))
		}
		for i, p := range parts {
			if p < 0 || int(p) >= k {
				t.Fatalf("k=%d: node %d part %d out of range", k, i, p)
			}
		}
		sizes := PartitionSizes(parts, k)
		for _, s := range sizes {
			if s < g.Rows/(2*k) {
				t.Fatalf("k=%d: unbalanced sizes %v", k, sizes)
			}
		}
		if k == 1 && cut != 0 {
			t.Fatalf("single part has cut %d", cut)
		}
		if k > 1 && cut == 0 {
			t.Fatalf("k=%d: connected graph must have a nonzero cut", k)
		}
	}
}

func TestPartitionBFSLocalityBeatsRandom(t *testing.T) {
	// BFS region growing should cut far fewer edges than a random split on
	// a locality-rich graph.
	rng := rand.New(rand.NewSource(4))
	g := WattsStrogatz(rng, 300, 6, 0.05)
	_, bfsCut := PartitionBFS(g, 4)

	randParts := make([]int32, g.Rows)
	for i := range randParts {
		randParts[i] = int32(rng.Intn(4))
	}
	randCut := 0
	for dst := 0; dst < g.Rows; dst++ {
		for _, src := range g.Neighbors(dst) {
			if randParts[src] != randParts[dst] {
				randCut++
			}
		}
	}
	if bfsCut >= randCut/2 {
		t.Fatalf("BFS cut %d not clearly below random cut %d", bfsCut, randCut)
	}
}

func TestPartitionBFSPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for k=0")
		}
	}()
	PartitionBFS(triangle(), 0)
}
