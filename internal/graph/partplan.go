package graph

import (
	"fmt"
	"sort"
)

// PartitionPlan materializes everything the partitioned-training strategy
// needs from a node labeling of one large graph: per part, the owned
// vertex set, the ghost (halo) vertex set its rows read across the cut,
// a local re-numbered adjacency whose per-row entry order matches the
// global matrix exactly, and the peer-to-peer routes that move boundary
// rows every GNN layer.
//
// Local numbering per part: owned vertices first, in ascending global id
// ([0, len(Owned))), then halo vertices, ascending ([len(Owned), Ext())).
// Because each local row keeps its global entry order and carries the
// global edge weights, SpMM over the local matrix produces bitwise the
// same owned rows as SpMM over the global matrix — partitioned forward
// activations match single-device training exactly; only cross-partition
// gradient accumulation reassociates.
type PartitionPlan struct {
	K       int
	N       int     // global node count
	Parts   []int32 // part id per global node
	EdgeCut int
	Local   []*LocalPart // indexed by part id
}

// HaloRoute is one peer's contribution to a part's halo: Src[i] is the
// source row in the peer's owned-local numbering, Dst[i] the destination
// row in the receiving part's extended numbering. Pairs are ordered by
// ascending global id, so both sides enumerate the route identically.
type HaloRoute struct {
	Src []int32
	Dst []int32
}

// LocalPart is one part's view of the partitioned graph.
type LocalPart struct {
	// Owned holds this part's global vertex ids, ascending.
	Owned []int32
	// Halo holds the global ids of ghost vertices (in-neighbors owned by
	// other parts), ascending.
	Halo []int32
	// Adj has Rows = len(Owned) (this part's rows of the global matrix)
	// and Cols = Ext(), with columns renumbered into local space and
	// per-row entry order preserved from the global matrix.
	Adj *CSR
	// AdjT is Adj's transpose (Rows = Ext(), Cols = len(Owned)), used by
	// the backward pass to push output gradients to extended inputs.
	AdjT *CSR
	// In[q] routes the rows this part receives from peer q each exchange
	// (empty route for q == own part id).
	In []HaloRoute

	localOf []int32 // global id -> local index, -1 when absent
}

// Ext returns the extended (owned + halo) row count.
func (lp *LocalPart) Ext() int { return len(lp.Owned) + len(lp.Halo) }

// LocalOf returns the local index of a global vertex id, or -1 when the
// vertex is neither owned by nor ghosted into this part.
func (lp *LocalPart) LocalOf(global int32) int32 { return lp.localOf[global] }

// HaloBytes returns the wire bytes this part receives per exchange of
// featDim fp32 features per ghost row.
func (lp *LocalPart) HaloBytes(featDim int) uint64 {
	return uint64(len(lp.Halo)) * uint64(featDim) * 4
}

// BoundaryFraction is the share of this part's owned rows that some other
// part reads as halo — the rows a boundary-first schedule computes (and
// publishes) ahead of the interior. Used by the overlap timing model.
func (lp *LocalPart) BoundaryFraction(plan *PartitionPlan, self int) float64 {
	if len(lp.Owned) == 0 {
		return 0
	}
	boundary := make(map[int32]struct{})
	for q, other := range plan.Local {
		if q == self {
			continue
		}
		for _, r := range other.In[self].Src {
			boundary[r] = struct{}{}
		}
	}
	return float64(len(boundary)) / float64(len(lp.Owned))
}

// NewPartitionPlan builds the plan for a square (typically GCN-normalized)
// adjacency under the given k-way labeling. The labeling must assign every
// node a part in [0, k); PartitionBFS and PartitionRandom both qualify.
func NewPartitionPlan(g *CSR, parts []int32, k int) *PartitionPlan {
	if g.Rows != g.Cols {
		panic("graph: NewPartitionPlan requires a square adjacency")
	}
	if len(parts) != g.Rows {
		panic(fmt.Sprintf("graph: %d labels for %d nodes", len(parts), g.Rows))
	}
	n := g.Rows
	plan := &PartitionPlan{K: k, N: n, Parts: parts, EdgeCut: countCut(g, parts), Local: make([]*LocalPart, k)}
	for p := 0; p < k; p++ {
		plan.Local[p] = &LocalPart{localOf: make([]int32, n)}
		for i := range plan.Local[p].localOf {
			plan.Local[p].localOf[i] = -1
		}
	}
	// Owned sets: ascending global id by construction of the scan.
	for v := 0; v < n; v++ {
		p := parts[v]
		if p < 0 || int(p) >= k {
			panic(fmt.Sprintf("graph: node %d labeled %d outside [0,%d)", v, p, k))
		}
		lp := plan.Local[p]
		lp.localOf[v] = int32(len(lp.Owned))
		lp.Owned = append(lp.Owned, int32(v))
	}
	// Halo sets: remote in-neighbors of owned rows, ascending global id
	// (one scan over all vertices keeps the order canonical).
	seen := make([]int32, n)
	for i := range seen {
		seen[i] = -1
	}
	for p := 0; p < k; p++ {
		lp := plan.Local[p]
		for _, v := range lp.Owned {
			for _, src := range g.Neighbors(int(v)) {
				if parts[src] != int32(p) && seen[src] != int32(p) {
					seen[src] = int32(p)
					lp.Halo = append(lp.Halo, src)
				}
			}
		}
		sortInt32s(lp.Halo)
		base := int32(len(lp.Owned))
		for i, h := range lp.Halo {
			lp.localOf[h] = base + int32(i)
		}
	}
	// Local adjacencies: this part's global rows with columns renumbered,
	// entry order preserved so per-row accumulation matches the global SpMM.
	for p := 0; p < k; p++ {
		lp := plan.Local[p]
		rows := len(lp.Owned)
		rowPtr := make([]int32, rows+1)
		for i, v := range lp.Owned {
			rowPtr[i+1] = rowPtr[i] + int32(g.Degree(int(v)))
		}
		colIdx := make([]int32, rowPtr[rows])
		var vals []float32
		if g.Vals != nil {
			vals = make([]float32, rowPtr[rows])
		}
		for i, v := range lp.Owned {
			nbrs := g.Neighbors(int(v))
			ws := g.Weights(int(v))
			base := rowPtr[i]
			for j, src := range nbrs {
				colIdx[base+int32(j)] = lp.localOf[src]
				if vals != nil {
					vals[base+int32(j)] = ws[j]
				}
			}
		}
		lp.Adj = &CSR{Rows: rows, Cols: lp.Ext(), RowPtr: rowPtr, ColIdx: colIdx, Vals: vals}
		lp.AdjT = lp.Adj.Transpose()
	}
	// Halo routes: ghost rows grouped by owner, in ascending global id.
	for p := 0; p < k; p++ {
		lp := plan.Local[p]
		lp.In = make([]HaloRoute, k)
		for i, h := range lp.Halo {
			owner := parts[h]
			rt := &lp.In[owner]
			rt.Src = append(rt.Src, plan.Local[owner].localOf[h])
			rt.Dst = append(rt.Dst, int32(len(lp.Owned)+i))
		}
	}
	return plan
}

// PartitionPlanBFS partitions with PartitionBFS and builds the full plan.
func PartitionPlanBFS(g *CSR, k int) *PartitionPlan {
	parts, _ := PartitionBFS(g, k)
	return NewPartitionPlan(g, parts, k)
}

// TotalHaloBytes sums every part's received halo bytes for one exchange of
// featDim fp32 features — the per-layer cross-cut traffic.
func (plan *PartitionPlan) TotalHaloBytes(featDim int) uint64 {
	var total uint64
	for _, lp := range plan.Local {
		total += lp.HaloBytes(featDim)
	}
	return total
}

// MaxPartSize returns the largest owned set (load-imbalance driver).
func (plan *PartitionPlan) MaxPartSize() int {
	m := 0
	for _, lp := range plan.Local {
		if len(lp.Owned) > m {
			m = len(lp.Owned)
		}
	}
	return m
}

func sortInt32s(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}
