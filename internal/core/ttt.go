package core

import (
	"fmt"

	"gnnmark/internal/backend"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/nn"
	"gnnmark/internal/ops"
	"gnnmark/internal/profiler"
)

// TTTResult is the outcome of a time-to-train run: the MLPerf-style metric
// the paper planned to adopt ("we plan to update our suite using the
// time-to-train metric proposed by the developers of MLPerf").
type TTTResult struct {
	Workload string
	Dataset  string
	// TargetLoss is the convergence threshold.
	TargetLoss float64
	// Epochs is the number of epochs run (== MaxEpochs when not converged).
	Epochs int
	// Converged reports whether the target was reached within MaxEpochs.
	Converged bool
	// SimSeconds is the simulated GPU time spent (kernels + exposed launch
	// overhead + transfers) until convergence or cutoff.
	SimSeconds float64
	// FinalLoss is the last epoch's mean loss.
	FinalLoss float64
	// LossCurve holds every epoch's loss.
	LossCurve []float64
}

// TimeToTrain trains the configured workload until its epoch loss falls to
// targetLoss or maxEpochs elapse, and reports the simulated time consumed.
func TimeToTrain(cfg RunConfig, targetLoss float64, maxEpochs int) (TTTResult, error) {
	cfg.defaults()
	if maxEpochs <= 0 {
		return TTTResult{}, fmt.Errorf("core: TimeToTrain requires positive maxEpochs, got %d", maxEpochs)
	}
	spec, err := Lookup(cfg.Workload)
	if err != nil {
		return TTTResult{}, err
	}
	dataset := cfg.Dataset
	if dataset == "" {
		dataset = spec.Datasets[0]
	}

	devCfg, err := gpu.Preset(cfg.GPU)
	if err != nil {
		return TTTResult{}, err
	}
	devCfg.MaxSampledWarps = cfg.SampledWarps
	devCfg.HalfPrecision = cfg.HalfPrecision
	be, err := backend.New(cfg.Backend)
	if err != nil {
		return TTTResult{}, err
	}
	dev := gpu.New(devCfg)
	prof := profiler.Attach(dev)
	env := models.NewEnv(ops.NewWith(dev, be), cfg.Seed)
	env.OnIteration = prof.NextIteration

	w := spec.Build(env, dataset, cfg.BatchDivisor)
	dev.ResetClock()

	res := TTTResult{
		Workload:   spec.Key,
		Dataset:    dataset,
		TargetLoss: targetLoss,
	}
	_ = nn.NumParams(w.Params()) // touch params so misconfigured builds fail fast
	for ep := 0; ep < maxEpochs; ep++ {
		loss := w.TrainEpoch()
		env.E.Reset()
		res.LossCurve = append(res.LossCurve, loss)
		res.Epochs = ep + 1
		res.FinalLoss = loss
		if loss <= targetLoss {
			res.Converged = true
			break
		}
	}
	res.SimSeconds = dev.ElapsedSeconds()
	return res, nil
}
