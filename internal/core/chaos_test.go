package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"testing"
	"time"

	"gnnmark/internal/autograd"
	"gnnmark/internal/ddp"
	"gnnmark/internal/exec"
	"gnnmark/internal/fault"
	"gnnmark/internal/partitioned"
)

// chaosCfg is the shared scenario of the chaos matrix: ARGA on cora, the
// one workload both execution planes support, kept small enough that the
// full matrix stays in test-suite territory.
func chaosCfg() RunConfig {
	return RunConfig{Workload: "ARGA", Epochs: 2, Seed: 7, SampledWarps: 256}
}

// chaosEvents builds a one-event schedule of the given type against slot
// at fleet time t, through the same Injector surface production schedules
// use.
func chaosEvents(typ fault.EventType, slot int, at float64) []fault.Event {
	var in fault.Injector
	switch typ {
	case fault.XID:
		in.InjectXIDAt(slot, 79, "GPU has fallen off the bus", at)
	case fault.ECCSBE:
		in.InjectECCAt(slot, false, "corrected SBE", at)
	case fault.ECCDBE:
		in.InjectECCAt(slot, true, "uncorrectable DBE", at)
	case fault.ThermalThrottle:
		in.InjectThermalAt(slot, 0, at)
	case fault.NVLinkDegrade:
		in.InjectNVLinkAt(slot, 0, at)
	case fault.ReplicaLoss:
		in.InjectReplicaLossAt(slot, "node preempted", at)
	default:
		panic("chaos: unhandled event type " + typ.String())
	}
	return in.Schedule()
}

// paramsHash folds every parameter value into one FNV-1a word for bitwise
// weight comparisons across runs.
func paramsHash(ps []*autograd.Param) uint64 {
	h := fnv.New64a()
	for _, p := range ps {
		for _, v := range p.Value.Data() {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// chaosPartitioned runs the 2-way partitioned arm under sched (nil =
// healthy), with immediate-mode monitors: a due fatal event panics at the
// rank's next kernel launch.
func chaosPartitioned(t *testing.T, sched []fault.Event) (*partitioned.Result, error) {
	t.Helper()
	factory, err := PartitionedFactory(chaosCfg(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := partitioned.Config{Comm: ddp.DefaultComm(), Overlap: true}
	if sched != nil {
		for slot := 0; slot < 2; slot++ {
			cfg.Monitors = append(cfg.Monitors,
				fault.NewMonitor(fault.SlotEvents(sched, slot), false))
		}
	}
	return partitioned.Train(factory, 2, chaosCfg().Epochs, cfg)
}

// chaosElastic runs the 2-way elastic DDP arm under sched (nil = healthy).
func chaosElastic(t *testing.T, sched []fault.Event) ddp.ElasticResult {
	t.Helper()
	factory, err := DDPFactory(chaosCfg())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ddp.RunElastic(factory, 2, chaosCfg().Epochs, ddp.ElasticOptions{Schedule: sched})
	if err != nil {
		t.Fatalf("elastic run failed: %v", err)
	}
	return res
}

// TestChaosMatrix is the headline chaos harness: every health-event type x
// {elastic DDP, partitioned} x its severity arm. Fatal events must end in a
// clean recovery (elastic) or a clean, named, rank-attributed abort
// (partitioned) — never a hang (a watchdog panics the run), never corrupted
// numerics (degraded arms pin losses and weights bitwise against the
// healthy baseline). Every faulty outcome replays bitwise at the same
// schedule.
func TestChaosMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos matrix is slow")
	}

	// Healthy baselines, shared across the matrix.
	base := chaosElastic(t, nil)
	if base.Goodput != 1 || base.Recoveries != 0 {
		t.Fatalf("healthy elastic baseline not clean: %+v", base)
	}
	epochT := base.UsefulSeconds / float64(chaosCfg().Epochs)
	// Fatal-event timestamps compare against barrier-time device clocks,
	// which advance with compute only (allreduce time is modeled on top),
	// so probe one healthy epoch's critical-path compute.
	probeFactory, err := DDPFactory(chaosCfg())
	if err != nil {
		t.Fatal(err)
	}
	probe, err := ddp.NewCluster(2, ddp.ClusterConfig{}).Run(probeFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	computeT := probe.ComputeSeconds
	partBase, err := chaosPartitioned(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	partBaseHash := paramsHash(partBase.Workers[0].Params())

	for _, typ := range fault.AllEventTypes() {
		typ := typ
		sev := fault.Classify(typ)

		t.Run(fmt.Sprintf("ddp/%s/%s", typ, sev), func(t *testing.T) {
			watchdog := time.AfterFunc(2*time.Minute, func() {
				panic("chaos case hung: ddp/" + typ.String())
			})
			defer watchdog.Stop()

			switch sev {
			case fault.Fatal:
				// Kill rank/slot 1 mid-epoch-2 (after the epoch-1
				// checkpoint): elastic recovery must drop it, re-shard, and
				// still finish every epoch within one restart's overhead.
				sched := chaosEvents(typ, 1, computeT*1.5)
				a := chaosElastic(t, sched)
				if a.Recoveries != 1 {
					t.Fatalf("recoveries = %d, want 1", a.Recoveries)
				}
				if len(a.Survivors) != 1 || a.Survivors[0] != 0 {
					t.Fatalf("survivors = %v, want [0]", a.Survivors)
				}
				if a.EpochsCompleted != chaosCfg().Epochs {
					t.Fatalf("completed %d epochs, want %d", a.EpochsCompleted, chaosCfg().Epochs)
				}
				if a.LostSeconds <= 0 {
					t.Fatal("mid-epoch kill must lose work")
				}
				// Recovery deadline: exactly one elastic restart, nothing
				// else, on the overhead ledger.
				if a.OverheadSeconds != ddp.DefaultRestartOverheadSeconds {
					t.Fatalf("overhead = %v, want one restart (%v)",
						a.OverheadSeconds, ddp.DefaultRestartOverheadSeconds)
				}
				if a.Goodput <= 0 || a.Goodput >= 1 {
					t.Fatalf("goodput = %v, want in (0, 1)", a.Goodput)
				}
				// Bitwise replay of the whole faulty scenario.
				b := chaosElastic(t, sched)
				if a.UsefulSeconds != b.UsefulSeconds || a.LostSeconds != b.LostSeconds ||
					a.OverheadSeconds != b.OverheadSeconds || a.Goodput != b.Goodput {
					t.Fatalf("replay accounting diverged:\n%+v\nvs\n%+v", a, b)
				}
				if len(a.Losses) != len(b.Losses) {
					t.Fatalf("replay loss count diverged: %d vs %d", len(a.Losses), len(b.Losses))
				}
				for i := range a.Losses {
					if a.Losses[i] != b.Losses[i] {
						t.Fatalf("epoch %d loss diverged across replays", i)
					}
				}
				if paramsHash(a.Replicas[0].Params()) != paramsHash(b.Replicas[0].Params()) {
					t.Fatal("survivor weights diverged across replays")
				}

			default: // Degraded / Info: the job limps on, numerics untouched.
				at := 0.0
				if typ == fault.ECCSBE {
					at = epochT * 0.5
				}
				a := chaosElastic(t, chaosEvents(typ, 0, at))
				if a.Recoveries != 0 || len(a.Survivors) != 2 {
					t.Fatalf("degraded event must not kill ranks: %+v", a)
				}
				if a.Goodput != 1 {
					t.Fatalf("degraded run goodput = %v, want 1 (no lost work)", a.Goodput)
				}
				if len(a.Losses) != len(base.Losses) {
					t.Fatalf("loss count %d, want %d", len(a.Losses), len(base.Losses))
				}
				for i := range a.Losses {
					if a.Losses[i] != base.Losses[i] {
						t.Fatalf("epoch %d loss differs from healthy run — degraded events must not touch numerics", i)
					}
				}
				if sev == fault.Degraded {
					if a.UsefulSeconds <= base.UsefulSeconds {
						t.Fatalf("throttled run took %v, healthy %v — slowdown not modeled",
							a.UsefulSeconds, base.UsefulSeconds)
					}
				} else if a.UsefulSeconds != base.UsefulSeconds {
					t.Fatalf("corrected-error run took %v, healthy %v — info events must not cost time",
						a.UsefulSeconds, base.UsefulSeconds)
				}
			}
		})

		t.Run(fmt.Sprintf("partitioned/%s/%s", typ, sev), func(t *testing.T) {
			watchdog := time.AfterFunc(2*time.Minute, func() {
				panic("chaos case hung: partitioned/" + typ.String())
			})
			defer watchdog.Stop()

			switch sev {
			case fault.Fatal:
				// The partitioned plane has no recovery story: a fatal event
				// must surface as a clean, named, rank-attributed abort.
				sched := chaosEvents(typ, 1, partBase.ComputeSeconds*0.25)
				_, err := chaosPartitioned(t, sched)
				if err == nil {
					t.Fatal("fatal event did not abort the run")
				}
				var re *exec.RankError
				if !errors.As(err, &re) || re.Rank != 1 {
					t.Fatalf("abort not attributed to rank 1: %v", err)
				}
				var fe *fault.FatalError
				if !errors.As(err, &fe) || fe.Event.Type != typ || fe.Event.Slot != 1 {
					t.Fatalf("abort does not name the event: %v", err)
				}
				// Bitwise replay: the same schedule dies the same death.
				_, err2 := chaosPartitioned(t, sched)
				if err2 == nil || err2.Error() != err.Error() {
					t.Fatalf("replay abort diverged:\n%v\nvs\n%v", err, err2)
				}

			default:
				at := 0.0
				if typ == fault.ECCSBE {
					at = partBase.ComputeSeconds * 0.25
				}
				res, err := chaosPartitioned(t, chaosEvents(typ, 0, at))
				if err != nil {
					t.Fatalf("degraded event aborted the run: %v", err)
				}
				if len(res.EpochLosses) != len(partBase.EpochLosses) {
					t.Fatalf("loss count %d, want %d", len(res.EpochLosses), len(partBase.EpochLosses))
				}
				for i := range res.EpochLosses {
					if res.EpochLosses[i] != partBase.EpochLosses[i] {
						t.Fatalf("epoch %d loss differs from healthy run — degraded events must not touch numerics", i)
					}
				}
				if paramsHash(res.Workers[0].Params()) != partBaseHash {
					t.Fatal("degraded run weights differ from healthy run")
				}
				switch typ {
				case fault.ThermalThrottle:
					if res.ComputeSeconds <= partBase.ComputeSeconds || res.TotalSeconds <= partBase.TotalSeconds {
						t.Fatalf("thermal throttle did not stretch compute: %v vs healthy %v",
							res.TotalSeconds, partBase.TotalSeconds)
					}
				case fault.NVLinkDegrade:
					if res.HaloSeconds <= partBase.HaloSeconds {
						t.Fatalf("link degrade did not stretch halo copies: %v vs healthy %v",
							res.HaloSeconds, partBase.HaloSeconds)
					}
					if res.TotalSeconds < partBase.TotalSeconds {
						t.Fatal("link degrade shortened the run")
					}
				default: // ECC SBE: logged, zero cost.
					if res.TotalSeconds != partBase.TotalSeconds {
						t.Fatalf("corrected error cost time: %v vs healthy %v",
							res.TotalSeconds, partBase.TotalSeconds)
					}
				}
			}
		})
	}
}
