package core

import (
	"fmt"

	"gnnmark/internal/backend"
	"gnnmark/internal/datasets"
	"gnnmark/internal/ddp"
	"gnnmark/internal/gpu"
	"gnnmark/internal/graph"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
	"gnnmark/internal/partitioned"
)

// PartitionedWorkloads lists the registry keys the graph-partitioned plane
// supports: the suite's full-graph (ARGA) and batched-graph (DGCN) GCN
// workloads, the two the paper's multi-GPU discussion singles out.
func PartitionedWorkloads() []string { return []string{"ARGA", "DGCN"} }

// PartitionedFactory returns the per-rank builder for cfg's workload under
// the partitioned plane. partition overrides the node labeling (nil uses
// graph.PartitionBFS); it must be deterministic — every rank runs it.
func PartitionedFactory(cfg RunConfig, partition func(g *graph.CSR, k int) ([]int32, int)) (partitioned.Factory, error) {
	cfg.defaults()
	spec, err := Lookup(cfg.Workload)
	if err != nil {
		return nil, err
	}
	dataset := cfg.Dataset
	if dataset == "" {
		dataset = spec.Datasets[0]
	}
	// Resolve every reachable device config up front: one per declared
	// fleet slot (rank = slot under the partitioned plane), or the single
	// shared preset.
	slots := len(cfg.Devices)
	if slots == 0 {
		slots = 1
	}
	devCfgs := make([]gpu.Config, slots)
	for i := range devCfgs {
		var err error
		if devCfgs[i], err = cfg.DeviceConfig(i); err != nil {
			return nil, err
		}
	}
	be, err := backend.New(cfg.Backend)
	if err != nil {
		return nil, err
	}

	switch spec.Key {
	case "ARGA", "DGCN":
	default:
		return nil, fmt.Errorf("core: workload %s does not support partitioned training (have %v)",
			spec.Key, PartitionedWorkloads())
	}

	return func(rank, world int) (models.PartWorkload, *models.Env, *gpu.Device) {
		devCfg := devCfgs[0]
		if len(cfg.Devices) > 0 {
			if rank >= len(devCfgs) {
				panic(fmt.Sprintf("core: partitioned rank %d outside the %d declared devices", rank, len(devCfgs)))
			}
			devCfg = devCfgs[rank]
		}
		dev := gpu.New(devCfg)
		if cfg.OnDevice != nil {
			cfg.OnDevice(dev)
		}
		// The partitioned plane never enables the pipeline: its own
		// two-stream timeline owns the overlap model, so the Env's clock
		// must stay the serialized device clock.
		env := models.NewEnv(ops.NewWith(dev, be), cfg.Seed)
		switch spec.Key {
		case "ARGA":
			ds := datasets.NewCitation(env.RNG, dataset)
			return models.NewPartitionedARGA(env, ds, models.ARGAConfig{}, rank, world, partition), env, dev
		default: // DGCN
			ds := datasets.MolHIV(env.RNG)
			return models.NewPartitionedDGCN(env, ds, models.DGCNConfig{}, rank, world, partition), env, dev
		}
	}, nil
}

// RunPartitioned trains cfg.Workload with the executed graph-partitioned
// engine across cfg.GPUs simulated devices. cfg.Overlap selects the
// boundary-first overlapped halo exchange.
func RunPartitioned(cfg RunConfig) (*partitioned.Result, error) {
	cfg.defaults()
	factory, err := PartitionedFactory(cfg, nil)
	if err != nil {
		return nil, err
	}
	world := cfg.GPUs
	if world < 1 {
		world = 1
	}
	return partitioned.Train(factory, world, cfg.Epochs,
		partitioned.Config{Comm: ddp.DefaultComm(), Overlap: cfg.Overlap})
}
