package core

import (
	"strings"
	"testing"

	"gnnmark/internal/gpu"
	"gnnmark/internal/obs"
)

func TestRegistryCoversTableI(t *testing.T) {
	want := []string{"PSAGE", "STGCN", "DGCN", "GW", "KGNNL", "KGNNH", "ARGA", "TLSTM"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(reg), len(want))
	}
	for i, k := range want {
		if reg[i].Key != k {
			t.Fatalf("registry[%d] = %s, want %s", i, reg[i].Key, k)
		}
		if reg[i].Model == "" || reg[i].Domain == "" || reg[i].Framework == "" {
			t.Fatalf("%s: incomplete Table I metadata", k)
		}
		if len(reg[i].Datasets) == 0 || reg[i].Build == nil {
			t.Fatalf("%s: no datasets or builder", k)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("ARGA"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("NOPE"); err == nil {
		t.Fatal("want error for unknown workload")
	} else if !strings.Contains(err.Error(), "NOPE") {
		t.Fatalf("error should name the workload: %v", err)
	}
}

func TestRunARGA(t *testing.T) {
	res, err := Run(RunConfig{Workload: "ARGA", Epochs: 2, SampledWarps: 512})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workload != "ARGA" || res.Dataset != "cora" {
		t.Fatalf("run identity wrong: %s %s", res.Workload, res.Dataset)
	}
	if len(res.Losses) != 2 || len(res.EpochSeconds) != 2 {
		t.Fatalf("epochs not recorded: %v %v", res.Losses, res.EpochSeconds)
	}
	if res.Report.Kernels == 0 || res.Report.KernelSeconds <= 0 {
		t.Fatal("no kernels profiled")
	}
	if res.ParamCount == 0 {
		t.Fatal("no parameters")
	}
	if res.Report.TimeShare[gpu.OpSpMM] == 0 {
		t.Fatal("ARGA must spend time in SpMM")
	}
	if len(res.SparsityTimeline) == 0 {
		t.Fatal("no sparsity timeline")
	}
	if res.Report.AvgSparsity < 0.5 {
		t.Fatalf("ARGA/cora H2D sparsity = %.2f, want high (sparse BoW features)", res.Report.AvgSparsity)
	}
}

// TestRunAttributesHostTimeToOpClasses pins the attribution guarantee: with
// observability on, the per-op-class accounting must cover at least 90% of
// the host time the phase spans measure (the op stream is where engine host
// time goes), and ARGA's dominant classes must be present.
func TestRunAttributesHostTimeToOpClasses(t *testing.T) {
	obs.Enable()
	defer func() {
		obs.Reset()
		obs.Disable()
	}()
	res, err := Run(RunConfig{Workload: "ARGA", Epochs: 2, SampledWarps: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.HostOpClasses) != 2 || len(res.HostPhases) != 2 {
		t.Fatalf("per-epoch attribution missing: %d op-class, %d phase breakdowns",
			len(res.HostOpClasses), len(res.HostPhases))
	}
	for i, b := range res.HostOpClasses {
		if b.Nanos[gpu.OpGEMM] <= 0 || b.Nanos[gpu.OpSpMM] <= 0 {
			t.Fatalf("epoch %d: ARGA must attribute host time to GEMM and SpMM: %s", i, b.Summary(0))
		}
		phaseNs := res.HostPhases[i].PhaseNanos()
		if cov := b.Coverage(phaseNs); cov < 0.9 {
			t.Fatalf("epoch %d: op-class attribution covers %.1f%% of phase host time, want >= 90%%\n%s",
				i, 100*cov, b.Summary(phaseNs))
		}
	}
}

func TestRunRejectsBadDataset(t *testing.T) {
	if _, err := Run(RunConfig{Workload: "ARGA", Dataset: "reddit"}); err == nil {
		t.Fatal("want error")
	}
	if _, err := Run(RunConfig{Workload: "nope"}); err == nil {
		t.Fatal("want error")
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	run := func() RunResult {
		r, err := Run(RunConfig{Workload: "KGNNL", Epochs: 1, Seed: 5, SampledWarps: 256})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if a.Losses[0] != b.Losses[0] || a.Report.Kernels != b.Report.Kernels {
		t.Fatal("runs not deterministic")
	}
}

func TestDefaultSuiteIncludesBothPSAGEDatasets(t *testing.T) {
	suite := DefaultSuite()
	if len(suite) != 9 {
		t.Fatalf("suite size = %d, want 9 (8 workloads + PSAGE/NWP)", len(suite))
	}
	nwp := false
	for _, sr := range suite {
		if sr.Workload == "PSAGE" && sr.Dataset == "NWP" {
			nwp = true
		}
	}
	if !nwp {
		t.Fatal("suite must include PSAGE on NWP")
	}
}

func TestLabel(t *testing.T) {
	r := RunResult{Workload: "PSAGE", Dataset: "NWP"}
	if r.Label() != "PSAGE(NWP)" {
		t.Fatalf("label = %s", r.Label())
	}
	r = RunResult{Workload: "STGCN", Dataset: "METR-LA"}
	if r.Label() != "STGCN" {
		t.Fatalf("label = %s", r.Label())
	}
}

func TestHalfPrecisionRunIsFaster(t *testing.T) {
	fp32, err := Run(RunConfig{Workload: "DGCN", Epochs: 1, SampledWarps: 512})
	if err != nil {
		t.Fatal(err)
	}
	fp16, err := Run(RunConfig{Workload: "DGCN", Epochs: 1, SampledWarps: 512, HalfPrecision: true})
	if err != nil {
		t.Fatal(err)
	}
	if fp16.Report.KernelSeconds >= fp32.Report.KernelSeconds {
		t.Fatalf("fp16 run (%.5fs) should beat fp32 (%.5fs)",
			fp16.Report.KernelSeconds, fp32.Report.KernelSeconds)
	}
}

func TestTimeToTrainConverges(t *testing.T) {
	// STGCN's forecast MSE falls fast; a loose target converges quickly.
	res, err := TimeToTrain(RunConfig{Workload: "STGCN", SampledWarps: 256, Seed: 4}, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge in %d epochs: %v", res.Epochs, res.LossCurve)
	}
	if res.SimSeconds <= 0 || res.Epochs < 1 {
		t.Fatalf("bad TTT result: %+v", res)
	}
	if res.FinalLoss > res.TargetLoss {
		t.Fatal("converged but final loss above target")
	}
	// A stricter target costs at least as many epochs and simulated time.
	strict, err := TimeToTrain(RunConfig{Workload: "STGCN", SampledWarps: 256, Seed: 4}, 0.2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Epochs < res.Epochs || strict.SimSeconds < res.SimSeconds {
		t.Fatalf("stricter target was cheaper: %+v vs %+v", strict, res)
	}
}

func TestTimeToTrainCutoff(t *testing.T) {
	res, err := TimeToTrain(RunConfig{Workload: "TLSTM", SampledWarps: 256}, 0.0001, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Epochs != 2 {
		t.Fatalf("impossible target should hit the cutoff: %+v", res)
	}
	if _, err := TimeToTrain(RunConfig{Workload: "TLSTM"}, 0.1, 0); err == nil {
		t.Fatal("want error for non-positive maxEpochs")
	}
	if _, err := TimeToTrain(RunConfig{Workload: "nope"}, 0.1, 1); err == nil {
		t.Fatal("want error for unknown workload")
	}
}
