package core

import "testing"

// runPipe is a short ARGA characterization with the given pipeline config.
// ARGA re-uploads the full ~91%-zero Cora feature matrix every iteration
// (paper Fig. 7), making it both the overlap and the compression showcase.
func runPipe(t *testing.T, depth int, compress bool) RunResult {
	t.Helper()
	res, err := Run(RunConfig{
		Workload: "ARGA", Epochs: 4, Seed: 7, SampledWarps: 256,
		PipelineDepth: depth, CompressH2D: compress,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pipe) != len(res.EpochSeconds) {
		t.Fatalf("pipe epochs %d != epochs %d", len(res.Pipe), len(res.EpochSeconds))
	}
	return res
}

// With depth >= 2 the staged feature upload of epoch e+1 overlaps epoch e's
// compute, so the overlapped timeline beats the serialized clock.
func TestPipelineOverlapBeatsSync(t *testing.T) {
	res := runPipe(t, 2, false)
	var sync, pipe float64
	for _, pe := range res.Pipe {
		sync += pe.SyncSeconds
		pipe += pe.PipeSeconds
	}
	if pipe >= sync {
		t.Fatalf("pipelined epochs %.6fs not faster than sync %.6fs", pipe, sync)
	}
	// Some copy time must actually be hidden for the win to be overlap.
	var hidden float64
	for _, pe := range res.Pipe {
		hidden += pe.CopyBusy - pe.ExposedCopySeconds()
	}
	if hidden <= 0 {
		t.Fatalf("no copy time hidden (sync %.6fs, pipe %.6fs)", sync, pipe)
	}
	// SyncSeconds must equal the device's serialized epoch time: the
	// pipeline reports both numbers from one run.
	for ep, pe := range res.Pipe {
		if pe.SyncSeconds != res.EpochSeconds[ep] {
			t.Fatalf("epoch %d: SyncSeconds %x != EpochSeconds %x",
				ep, pe.SyncSeconds, res.EpochSeconds[ep])
		}
	}
}

// Depth 1 stages one batch ahead; the overlapped time can never exceed the
// serialized clock (copies only ever start earlier, not later).
func TestPipelineDepthOneNoSlowdown(t *testing.T) {
	res := runPipe(t, 1, false)
	for ep, pe := range res.Pipe {
		if pe.PipeSeconds > pe.SyncSeconds+1e-12 {
			t.Fatalf("epoch %d: pipelined %.9fs exceeds sync %.9fs", ep, pe.PipeSeconds, pe.SyncSeconds)
		}
	}
}

// -compress-h2d on the ~91%-zero ARGA features must cut modeled H2D bytes
// at least 2x, and the compressed copy stream must be cheaper than raw.
func TestPipelineCompressionTwofold(t *testing.T) {
	raw := runPipe(t, 2, false)
	comp := runPipe(t, 2, true)
	var rawB, encB uint64
	var rawCopy, compCopy float64
	for ep := range comp.Pipe {
		rawB += comp.Pipe[ep].RawBytes
		encB += comp.Pipe[ep].EncodedBytes
		rawCopy += raw.Pipe[ep].CopyBusy
		compCopy += comp.Pipe[ep].CopyBusy
	}
	if encB == 0 || float64(rawB)/float64(encB) < 2 {
		t.Fatalf("compression ratio %.2f < 2 (raw %d, encoded %d)",
			float64(rawB)/float64(max(1, int(encB))), rawB, encB)
	}
	if compCopy >= rawCopy {
		t.Fatalf("compressed copy busy %.6fs not below raw %.6fs", compCopy, rawCopy)
	}
	// The device's serialized clock always accounts raw bytes: compression
	// must not perturb the baseline numbers.
	for ep := range comp.Pipe {
		if comp.Pipe[ep].SyncSeconds != raw.Pipe[ep].SyncSeconds {
			t.Fatalf("epoch %d: compression changed the sync clock", ep)
		}
	}
}

// Stream lanes cover the whole makespan: busy + idle == timeline end per
// lane, and the copy-engine lane exists alongside compute.
func TestPipelineStreamLanes(t *testing.T) {
	res := runPipe(t, 2, false)
	if len(res.StreamLanes) != 2 {
		t.Fatalf("want 2 stream lanes, got %d", len(res.StreamLanes))
	}
	names := map[string]bool{}
	for _, l := range res.StreamLanes {
		names[l.Name] = true
		if l.Busy < 0 || l.Idle < 0 {
			t.Fatalf("lane %s has negative accounting: %+v", l.Name, l)
		}
	}
	if !names["compute"] || !names["copy engine"] {
		t.Fatalf("lanes missing compute/copy engine: %v", names)
	}
}
