// Package core is the public surface of the GNNMark suite reproduction: a
// registry of the eight workloads with their datasets (paper Table I) and a
// characterization runner that wires a simulated V100, the profiler, and a
// workload together and returns every metric the paper's figures report.
package core

import (
	"fmt"
	"sort"

	"gnnmark/internal/backend"
	"gnnmark/internal/datasets"
	"gnnmark/internal/ddp"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/nn"
	"gnnmark/internal/obs"
	"gnnmark/internal/ops"
	"gnnmark/internal/profiler"
	"gnnmark/internal/stream"
	"gnnmark/internal/vmem"
)

// Spec is one Table I row: a workload, its provenance, and its datasets.
type Spec struct {
	// Key is the paper's mnemonic (PSAGE, STGCN, DGCN, GW, KGNNL, KGNNH,
	// ARGA, TLSTM).
	Key string
	// Model is the full model name.
	Model string
	// Framework is the GNN framework the paper's implementation uses.
	Framework string
	// Domain is the application domain.
	Domain string
	// GraphKind is the graph-data category (homogeneous, heterogeneous,
	// dynamic, trees, batched small graphs).
	GraphKind string
	// Datasets lists usable dataset keys; the first is the default.
	Datasets []string
	// Build constructs the workload on the given dataset with the given
	// DDP batch divisor.
	Build func(env *models.Env, dataset string, batchDivisor int) models.Workload
}

// registry holds the suite in paper order.
var registry = []Spec{
	{
		Key: "PSAGE", Model: "PinSAGE", Framework: "DGL",
		Domain: "Recommendation systems", GraphKind: "heterogeneous bipartite",
		Datasets: []string{"MVL", "NWP"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			var ds *datasets.Bipartite
			switch dataset {
			case "MVL":
				ds = datasets.MovieLens(env.RNG)
			case "NWP":
				ds = datasets.NowPlaying(env.RNG)
			default:
				panic("core: PSAGE dataset must be MVL or NWP, got " + dataset)
			}
			return models.NewPSAGE(env, ds, models.PSAGEConfig{BatchDivisor: div})
		},
	},
	{
		Key: "STGCN", Model: "Spatio-Temporal GCN", Framework: "PyTorch",
		Domain: "Traffic forecasting", GraphKind: "dynamic (spatio-temporal)",
		Datasets: []string{"METR-LA"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewSTGCN(env, datasets.METRLA(env.RNG), models.STGCNConfig{BatchDivisor: div})
		},
	},
	{
		Key: "DGCN", Model: "DeepGCN", Framework: "PyG",
		Domain: "Molecular property prediction", GraphKind: "batched molecule graphs",
		Datasets: []string{"ogbg-molhiv"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewDGCN(env, datasets.MolHIV(env.RNG), models.DGCNConfig{BatchDivisor: div})
		},
	},
	{
		Key: "GW", Model: "GraphWriter", Framework: "PyTorch",
		Domain: "Text generation from knowledge graphs", GraphKind: "knowledge graphs",
		Datasets: []string{"AGENDA"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewGW(env, datasets.AGENDA(env.RNG), models.GWConfig{BatchDivisor: div})
		},
	},
	{
		Key: "KGNNL", Model: "k-GNN (1-2-GNN)", Framework: "PyG",
		Domain: "Protein classification", GraphKind: "batched small graphs",
		Datasets: []string{"PROTEINS"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewKGNN(env, datasets.Proteins(env.RNG), models.KGNNConfig{K: 2, BatchDivisor: div})
		},
	},
	{
		Key: "KGNNH", Model: "k-GNN (1-2-3-GNN)", Framework: "PyG",
		Domain: "Protein classification", GraphKind: "batched small graphs",
		Datasets: []string{"PROTEINS"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewKGNN(env, datasets.Proteins(env.RNG), models.KGNNConfig{K: 3, BatchDivisor: div})
		},
	},
	{
		Key: "ARGA", Model: "Adversarially Regularized Graph Autoencoder", Framework: "PyG",
		Domain: "Node clustering / graph embedding", GraphKind: "homogeneous citation graphs",
		Datasets: []string{"cora", "citeseer", "pubmed"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewARGA(env, datasets.NewCitation(env.RNG, dataset), models.ARGAConfig{})
		},
	},
	{
		Key: "TLSTM", Model: "Child-Sum Tree-LSTM", Framework: "DGL",
		Domain: "Sentiment classification", GraphKind: "batched trees",
		Datasets: []string{"SST"},
		Build: func(env *models.Env, dataset string, div int) models.Workload {
			return models.NewTLSTM(env, datasets.SST(env.RNG), models.TLSTMConfig{BatchDivisor: div})
		},
	},
}

// Registry returns the suite specs in paper order. The returned slice is a
// copy; mutating it does not affect the registry.
func Registry() []Spec {
	out := make([]Spec, len(registry))
	copy(out, registry)
	return out
}

// Lookup returns the spec with the given key.
func Lookup(key string) (Spec, error) {
	for _, s := range registry {
		if s.Key == key {
			return s, nil
		}
	}
	keys := make([]string, 0, len(registry))
	for _, s := range registry {
		keys = append(keys, s.Key)
	}
	sort.Strings(keys)
	return Spec{}, fmt.Errorf("core: unknown workload %q (have %v)", key, keys)
}

// RunConfig configures one characterization run.
type RunConfig struct {
	// Workload is the registry key; Dataset one of its datasets (empty =
	// default).
	Workload string
	Dataset  string
	// Epochs is the number of training epochs (default 3).
	Epochs int
	// Seed drives all randomness (default 1).
	Seed int64
	// SampledWarps overrides the device's cache-replay budget (default
	// 4096; lower = faster, coarser).
	SampledWarps int
	// HalfPrecision enables the fp16 storage mode (paper future work).
	HalfPrecision bool
	// ForwardOnly characterizes inference instead of training: iterations
	// run the forward pass only, with no backward kernels or optimizer
	// steps (the paper's future-work inference-study mode).
	ForwardOnly bool
	// BypassL1 disables the L1 data cache (all accesses served by L2): the
	// paper's suggested mitigation for the very low L1 hit rates.
	BypassL1 bool
	// GPU selects the device preset: "v100" (default, the paper's GPU),
	// "p100", or "a100" for cross-generation sensitivity studies.
	GPU string
	// BatchDivisor shards the per-iteration batch (used by the analytical
	// DDP estimate).
	BatchDivisor int
	// GPUs selects executed multi-GPU DDP training (RunDDP): the number of
	// simulated devices, each training a replica on its batch shard with
	// bucketed ring-allreduce gradient averaging. 0 or 1 = single device.
	GPUs int
	// Parallelism selects the executed multi-GPU strategy for GPUs > 1:
	// "ddp" (default, RunDDP's replicated model + sharded batches) or
	// "partitioned" (RunPartitioned's one-graph-part-per-GPU plane with
	// halo exchange; ARGA and DGCN only).
	Parallelism string
	// Overlap enables the boundary-first overlapped halo exchange under
	// the partitioned plane (ignored by DDP).
	Overlap bool
	// HBMGB overrides the simulated device-memory budget in GiB (0 = the
	// GPU preset's capacity, 16 GiB on the V100). Runs whose footprint
	// exceeds the budget return a *vmem.OOMError naming the failing kernel
	// and the top live allocations.
	HBMGB float64
	// Devices, when non-empty, pins an explicit device model per fleet
	// slot, overriding GPU/HBMGB: slot i (= rank under DDP/partitioned,
	// the only device when GPUs <= 1) runs on Devices[i]. The scenario
	// plane uses this to declare heterogeneous fleets (mixed V100/A100/
	// H100 nodes); SampledWarps/HalfPrecision/BypassL1 still apply on top.
	// Device models shape timing only — numerics are identical across
	// presets — so mixed fleets keep every equivalence guarantee.
	Devices []gpu.Config
	// Backend selects the CPU numerics backend: "serial" (default) or
	// "parallel". Both produce bitwise-identical results; parallel tiles
	// large kernels across a worker pool to speed up simulation wall-clock.
	Backend string
	// PipelineDepth enables the asynchronous input pipeline: input batches
	// are staged ahead by loader workers and their H2D copies run on a
	// dedicated copy-engine stream, overlapped with compute up to this many
	// iterations ahead. 0 = synchronous (the baseline). Numerics are
	// bitwise-identical either way; only the overlapped timeline differs.
	PipelineDepth int
	// LoaderWorkers is the loader worker-goroutine count (0 = default).
	LoaderWorkers int
	// CompressH2D times the copy engine on sparsity-encoded H2D bytes
	// (zero-run / bitmap codec) instead of raw; requires PipelineDepth > 0.
	CompressH2D bool
	// OnDevice, when non-nil, is invoked with each simulated device right
	// after construction — the hook the CLI uses to attach a trace.Recorder
	// before any kernels launch.
	OnDevice func(*gpu.Device)
}

func (c *RunConfig) defaults() {
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.SampledWarps == 0 {
		c.SampledWarps = 4096
	}
	if c.BatchDivisor == 0 {
		c.BatchDivisor = 1
	}
}

// RunResult is the outcome of one characterization run.
type RunResult struct {
	Workload string
	Dataset  string
	Report   profiler.Report
	// SparsityTimeline is the per-iteration H2D zero fraction (Figure 8).
	SparsityTimeline []float64
	// EpochSeconds is simulated time per epoch.
	EpochSeconds []float64
	// Losses is the mean training loss per epoch.
	Losses []float64
	// ParamCount is the model's trainable parameter count.
	ParamCount int
	// PerClass carries the per-op-class stats for Figures 5/6 per-op views.
	PerClass map[gpu.OpClass]profiler.ClassStats
	// HostPhases is the per-epoch host wall-clock phase breakdown; empty
	// unless obs.Enabled during the run.
	HostPhases []obs.PhaseBreakdown
	// HostOpClasses is the per-epoch host-time attribution by gpu.OpClass
	// (the engine's per-op interval accounting); empty unless obs.Enabled
	// during the run. Index-aligned with HostPhases.
	HostOpClasses []ops.OpClassBreakdown
	// Mem snapshots the device allocator after training: peak-live is the
	// per-iteration footprint high-water mark (the memory figure's input).
	Mem vmem.Stats
	// Pipe is the per-epoch pipeline accounting (sync vs overlapped epoch
	// time, per-stream busy time, raw vs encoded H2D bytes); empty unless
	// PipelineDepth > 0.
	Pipe []ops.PipeEpoch
	// StreamLanes snapshots the per-stream busy/idle accounting and trace
	// slices at the end of the run; nil unless PipelineDepth > 0.
	StreamLanes []stream.Lane
}

// Run executes one characterization run: build device + profiler + model,
// train, snapshot. A workload whose footprint exceeds the device-memory
// budget returns a *vmem.OOMError (the simulated-OOM report) as err.
func Run(cfg RunConfig) (res RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			if oom, ok := r.(*vmem.OOMError); ok {
				err = oom
				return
			}
			panic(r)
		}
	}()
	cfg.defaults()
	spec, err := Lookup(cfg.Workload)
	if err != nil {
		return RunResult{}, err
	}
	dataset := cfg.Dataset
	if dataset == "" {
		dataset = spec.Datasets[0]
	}
	found := false
	for _, d := range spec.Datasets {
		if d == dataset {
			found = true
		}
	}
	if !found {
		return RunResult{}, fmt.Errorf("core: workload %s has no dataset %q (have %v)",
			spec.Key, dataset, spec.Datasets)
	}

	devCfg, err := cfg.DeviceConfig(0)
	if err != nil {
		return RunResult{}, err
	}
	be, err := backend.New(cfg.Backend)
	if err != nil {
		return RunResult{}, err
	}
	dev := gpu.New(devCfg)
	if cfg.OnDevice != nil {
		cfg.OnDevice(dev)
	}
	prof := profiler.Attach(dev)
	env := models.NewEnv(ops.NewWith(dev, be), cfg.Seed)
	env.OnIteration = prof.NextIteration
	env.Training = !cfg.ForwardOnly
	// The pipeline config must be set before Build: workload constructors
	// create their input loaders from it.
	env.Pipeline = models.PipelineConfig{
		Depth:       cfg.PipelineDepth,
		Workers:     cfg.LoaderWorkers,
		CompressH2D: cfg.CompressH2D,
	}
	defer env.Close()

	w := spec.Build(env, dataset, cfg.BatchDivisor)
	// Construction may launch preprocessing kernels; measure training only
	// (memory peaks rebase to the still-live construction footprint).
	prof.Reset()
	dev.ResetClock()
	dev.Mem().ResetPeak()
	if obs.Enabled() {
		obs.Reset()
	}
	// Enable the stream timeline after construction and the clock reset, so
	// construction kernels stay on the classic path and the overlapped
	// timeline starts at t = 0 alongside the serialized clock.
	env.E.EnablePipeline(cfg.PipelineDepth, cfg.CompressH2D)

	res = RunResult{
		Workload:   spec.Key,
		Dataset:    dataset,
		ParamCount: nn.NumParams(w.Params()),
	}
	lastCap := obs.CapturePhases()
	lastOpCap := ops.CaptureOpClasses()
	for ep := 0; ep < cfg.Epochs; ep++ {
		epochScope := env.E.Track().Begin("epoch", obs.CatPhase)
		res.Losses = append(res.Losses, w.TrainEpoch())
		env.FinishPhase()
		epochScope.End()
		if obs.Enabled() {
			cap1 := obs.CapturePhases()
			res.HostPhases = append(res.HostPhases, lastCap.Delta(cap1))
			lastCap = cap1
			opCap := ops.CaptureOpClasses()
			res.HostOpClasses = append(res.HostOpClasses, opCap.Delta(lastOpCap))
			lastOpCap = opCap
		}
		prof.MarkEpoch()
		if pe, ok := env.E.EpochPipeStats(); ok {
			res.Pipe = append(res.Pipe, pe)
		}
		// Drop dead per-tensor address bookkeeping between epochs so the
		// engine's maps track live tensors, not every activation ever seen.
		env.E.Reset()
	}
	res.StreamLanes = env.E.StreamLanes()
	res.Report = prof.Snapshot()
	res.SparsityTimeline = prof.SparsityTimeline()
	res.EpochSeconds = prof.EpochSeconds()
	res.Mem = dev.MemStats()
	res.PerClass = map[gpu.OpClass]profiler.ClassStats{}
	for _, c := range gpu.AllOpClasses() {
		if cs := prof.Class(c); cs.Kernels > 0 {
			res.PerClass[c] = *cs
		}
	}
	return res, nil
}

// DeviceConfig resolves the device model for one fleet slot: the explicit
// per-slot override when Devices is set, otherwise the GPU preset with the
// shared HBMGB budget applied. The fidelity knobs (SampledWarps,
// HalfPrecision, BypassL1) apply on top either way.
func (c *RunConfig) DeviceConfig(slot int) (gpu.Config, error) {
	var devCfg gpu.Config
	if len(c.Devices) > 0 {
		if slot < 0 || slot >= len(c.Devices) {
			return gpu.Config{}, fmt.Errorf("core: fleet slot %d outside the %d declared devices",
				slot, len(c.Devices))
		}
		devCfg = c.Devices[slot]
	} else {
		var err error
		devCfg, err = gpu.Preset(c.GPU)
		if err != nil {
			return gpu.Config{}, err
		}
		if c.HBMGB > 0 {
			devCfg.HBMBytes = int64(c.HBMGB * (1 << 30))
		}
	}
	if c.SampledWarps > 0 {
		devCfg.MaxSampledWarps = c.SampledWarps
	}
	devCfg.HalfPrecision = c.HalfPrecision
	devCfg.BypassL1 = c.BypassL1
	return devCfg, nil
}

// SlotReplicaFactory builds replica `rank` of a `world`-replica cluster on
// the device model of fleet slot `slot`. Under plain DDP slot == rank; the
// elastic plane keeps slot stable across re-sharding so a surviving
// replica stays on its own (possibly heterogeneous) device model.
type SlotReplicaFactory func(slot, rank, world int) (models.Workload, *models.Env)

// DDPSlotFactory returns the slot-aware replica builder for cfg's
// workload: the heterogeneous-fleet generalization of DDPFactory. Every
// device config the fleet can reach is validated up front, so the factory
// itself never fails.
func DDPSlotFactory(cfg RunConfig) (SlotReplicaFactory, error) {
	cfg.defaults()
	spec, err := Lookup(cfg.Workload)
	if err != nil {
		return nil, err
	}
	dataset := cfg.Dataset
	if dataset == "" {
		dataset = spec.Datasets[0]
	}
	be, err := backend.New(cfg.Backend)
	if err != nil {
		return nil, err
	}
	// Resolve every reachable device config now: one per declared slot, or
	// the single shared preset.
	slots := len(cfg.Devices)
	if slots == 0 {
		slots = 1
	}
	devCfgs := make([]gpu.Config, slots)
	for i := range devCfgs {
		if devCfgs[i], err = cfg.DeviceConfig(i); err != nil {
			return nil, err
		}
	}

	return func(slot, rank, world int) (models.Workload, *models.Env) {
		devCfg := devCfgs[0]
		if len(cfg.Devices) > 0 {
			if slot < 0 || slot >= len(devCfgs) {
				panic(fmt.Sprintf("core: fleet slot %d outside the %d declared devices", slot, len(devCfgs)))
			}
			devCfg = devCfgs[slot]
		}
		dev := gpu.New(devCfg)
		if cfg.OnDevice != nil {
			cfg.OnDevice(dev)
		}
		env := models.NewEnv(ops.NewWith(dev, be), cfg.Seed)
		env.Rank, env.World = rank, world
		env.Pipeline = models.PipelineConfig{
			Depth:       cfg.PipelineDepth,
			Workers:     cfg.LoaderWorkers,
			CompressH2D: cfg.CompressH2D,
		}
		w := spec.Build(env, dataset, 1)
		// Construction kernels stay on the classic path; the cluster resets
		// the device clock before training, and the timeline starts at 0.
		env.E.EnablePipeline(cfg.PipelineDepth, cfg.CompressH2D)
		return w, env
	}, nil
}

// DDPFactory returns the per-rank replica builder for cfg's workload —
// the factory RunDDP, the elastic fault harness (ddp.RunElastic), and the
// goodput-under-churn study all share. Ranks map to fleet slots
// one-to-one (slot = rank).
func DDPFactory(cfg RunConfig) (ddp.ReplicaFactory, error) {
	slotFactory, err := DDPSlotFactory(cfg)
	if err != nil {
		return nil, err
	}
	return func(rank, world int) (models.Workload, *models.Env) {
		return slotFactory(rank, rank, world)
	}, nil
}

// RunDDP trains cfg.Workload with the executed DDP engine at world sizes
// 1, 2, 4, ... up to cfg.GPUs (always including cfg.GPUs itself) and
// returns the per-world-size timeline with speedups against the 1-GPU run.
func RunDDP(cfg RunConfig) ([]ddp.Result, error) {
	cfg.defaults()
	factory, err := DDPFactory(cfg)
	if err != nil {
		return nil, err
	}
	worlds := []int{1}
	for g := 2; g < cfg.GPUs; g *= 2 {
		worlds = append(worlds, g)
	}
	if cfg.GPUs > 1 {
		worlds = append(worlds, cfg.GPUs)
	}
	return ddp.ExecutedStrongScaling(factory, worlds, ddp.ClusterConfig{})
}

// SuiteRun pairs a workload key with a dataset for suite-wide sweeps.
type SuiteRun struct {
	Workload string
	Dataset  string
}

// DefaultSuite returns the workload/dataset pairs the paper's figures sweep
// over: every workload on its default dataset, plus PSAGE on NWP (the
// dataset-dependence contrast of Figures 2 and 7).
func DefaultSuite() []SuiteRun {
	var out []SuiteRun
	for _, s := range registry {
		out = append(out, SuiteRun{Workload: s.Key, Dataset: s.Datasets[0]})
		if s.Key == "PSAGE" {
			out = append(out, SuiteRun{Workload: s.Key, Dataset: "NWP"})
		}
	}
	return out
}

// RunSuite characterizes every workload in the suite with shared settings.
func RunSuite(cfg RunConfig) ([]RunResult, error) {
	var out []RunResult
	for _, sr := range DefaultSuite() {
		c := cfg
		c.Workload = sr.Workload
		c.Dataset = sr.Dataset
		r, err := Run(c)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// Label returns the display label of a run ("PSAGE(MVL)" when the workload
// has multiple datasets, otherwise just the key).
func (r RunResult) Label() string {
	spec, err := Lookup(r.Workload)
	if err == nil && len(spec.Datasets) > 1 {
		return fmt.Sprintf("%s(%s)", r.Workload, r.Dataset)
	}
	return r.Workload
}
