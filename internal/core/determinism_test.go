package core

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"strings"
	"testing"

	"gnnmark/internal/ddp"
	"gnnmark/internal/fault"
	"gnnmark/internal/gpu"
	"gnnmark/internal/partitioned"
)

// suiteDigest flattens the profile outputs PR 1's bitwise-equivalence
// guarantee covers — losses, per-class kernel times, and instruction
// counts — into an exact string (%x floats, no rounding).
func suiteDigest(results []RunResult) string {
	var b strings.Builder
	for _, r := range results {
		fmt.Fprintf(&b, "%s/%s losses=[", r.Workload, r.Dataset)
		for _, l := range r.Losses {
			fmt.Fprintf(&b, "%x ", l)
		}
		fmt.Fprintf(&b, "] kernels=%d sec=%x launch=%x\n",
			r.Report.Kernels, r.Report.KernelSeconds, r.Report.LaunchSeconds)
		for _, c := range gpu.AllOpClasses() {
			cs, ok := r.PerClass[c]
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "  %-12s sec=%x launch=%x kernels=%d instr=%d flops=%d iops=%d\n",
				c, cs.Seconds, cs.LaunchSeconds, cs.Kernels, cs.Mix.Total(), cs.Flops, cs.Iops)
		}
	}
	return b.String()
}

// TestSuiteGoldenDeterminism runs a short full-suite characterization twice
// under the serial backend and once under the parallel backend, and demands
// identical digests: the suite-level pin of the numerics-backend bitwise
// equivalence that the backend package property-tests at the unit level.
func TestSuiteGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite determinism run is slow")
	}
	run := func(backendName string) string {
		res, err := RunSuite(RunConfig{Epochs: 1, Seed: 7, SampledWarps: 256, Backend: backendName})
		if err != nil {
			t.Fatal(err)
		}
		return suiteDigest(res)
	}
	first := run("serial")
	if again := run("serial"); again != first {
		t.Fatalf("serial suite digest not reproducible:\n%s", firstDiff(first, again))
	}
	if par := run("parallel"); par != first {
		t.Fatalf("parallel backend digest differs from serial:\n%s", firstDiff(first, par))
	}

	// The asynchronous input pipeline reorders *when* copies run on the
	// overlapped timeline, never *what* executes: digests must stay
	// byte-identical with prefetching and H2D compression on.
	piped, err := RunSuite(RunConfig{
		Epochs: 1, Seed: 7, SampledWarps: 256, Backend: "serial",
		PipelineDepth: 4, CompressH2D: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if pd := suiteDigest(piped); pd != first {
		t.Fatalf("pipelined suite digest differs from synchronous:\n%s", firstDiff(first, pd))
	}

	// One seeded chaos schedule rides the same pin: a fault-injected
	// elastic run is a pure function of (seed, schedule), so its full
	// outcome — recovery structure, losses, accounting, surviving weights —
	// must replay bitwise and agree across numerics backends.
	chaosRun := func(backendName string) string {
		cfg := chaosCfg()
		cfg.Backend = backendName
		factory, err := DDPFactory(cfg)
		if err != nil {
			t.Fatal(err)
		}
		probe, err := ddp.NewCluster(2, ddp.ClusterConfig{}).Run(factory, 1)
		if err != nil {
			t.Fatal(err)
		}
		sched := fault.RandomSchedule(11, fault.ChurnConfig{
			Slots: 2, Horizon: probe.ComputeSeconds * 2, Fatals: 1, Degraded: 2,
		})
		res, err := ddp.RunElastic(factory, 2, cfg.Epochs, ddp.ElasticOptions{Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		return chaosDigest(res)
	}
	chaosFirst := chaosRun("serial")
	if again := chaosRun("serial"); again != chaosFirst {
		t.Fatalf("chaos digest not reproducible:\n%s", firstDiff(chaosFirst, again))
	}
	if par := chaosRun("parallel"); par != chaosFirst {
		t.Fatalf("parallel-backend chaos digest differs from serial:\n%s", firstDiff(chaosFirst, par))
	}
}

// chaosDigest flattens a fault-injected elastic run into an exact string:
// the recovery structure, every kept loss, the goodput ledger, and the
// surviving rank-0 weights folded through FNV-1a.
func chaosDigest(res ddp.ElasticResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "recoveries=%d survivors=%v epochs=%d rounds=%d losses=[",
		res.Recoveries, res.Survivors, res.EpochsCompleted, len(res.Rounds))
	for _, l := range res.Losses {
		fmt.Fprintf(&b, "%x ", l)
	}
	fmt.Fprintf(&b, "] useful=%x lost=%x overhead=%x goodput=%x params=%016x\n",
		res.UsefulSeconds, res.LostSeconds, res.OverheadSeconds, res.Goodput,
		paramsHash(res.Replicas[0].Params()))
	return b.String()
}

// partitionedDigest flattens an executed partitioned run into an exact
// string: losses and timings as %x floats, every rank-0 parameter value
// folded through FNV-1a, plus the traffic accounting. Any halo-ordering
// regression (map iteration, racy combine order) shifts the digest.
func partitionedDigest(res *partitioned.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "gpus=%d losses=[", res.GPUs)
	for _, l := range res.EpochLosses {
		fmt.Fprintf(&b, "%x ", l)
	}
	fmt.Fprintf(&b, "] secs=[")
	for _, s := range res.EpochSeconds {
		fmt.Fprintf(&b, "%x ", s)
	}
	fmt.Fprintf(&b, "] halo=%d cut=%d grad=%d\n", res.HaloBytes, res.EdgeCut, res.GradBytesPerIt)
	h := fnv.New64a()
	for _, p := range res.Workers[0].Params() {
		for _, v := range p.Value.Data() {
			var buf [4]byte
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			h.Write(buf[:])
		}
	}
	fmt.Fprintf(&b, "params=%016x\n", h.Sum64())
	return b.String()
}

// TestPartitionedGoldenDeterminism pins the partitioned plane the same way:
// two identical executed 2-way ARGA runs must produce byte-identical losses,
// simulated timings, and parameter bits.
func TestPartitionedGoldenDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("executed partitioned run is slow")
	}
	run := func() string {
		res, err := RunPartitioned(RunConfig{
			Workload: "ARGA", GPUs: 2, Epochs: 1,
			Seed: 7, SampledWarps: 256, Overlap: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return partitionedDigest(res)
	}
	first := run()
	if again := run(); again != first {
		t.Fatalf("partitioned digest not reproducible:\n%s", firstDiff(first, again))
	}
}

// firstDiff returns the first differing line pair for a readable failure.
func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  a: %s\n  b: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("lengths differ: %d vs %d lines", len(al), len(bl))
}
