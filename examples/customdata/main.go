// Custom data: run a GNNMark workload on your own graph files.
//
// The suite's synthetic generators can be replaced by plain-text files —
// an edge list, a dense feature table, and a label column — so the
// characterization pipeline runs on real datasets you have on disk. This
// example writes a small graph in that format, loads it back, and trains
// ARGA on it with the profiler attached.
//
//	go run ./examples/customdata
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
	"gnnmark/internal/profiler"
)

func main() {
	dir, err := os.MkdirTemp("", "gnnmark-custom")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Write a ring-of-cliques graph in the three-file layout.
	const n, cliques = 120, 8
	rng := rand.New(rand.NewSource(17))
	var edges, feats, labels strings.Builder
	per := n / cliques
	for c := 0; c < cliques; c++ {
		base := c * per
		for i := 0; i < per; i++ {
			for j := i + 1; j < per; j++ {
				fmt.Fprintf(&edges, "%d %d\n%d %d\n", base+i, base+j, base+j, base+i)
			}
		}
		next := ((c + 1) % cliques) * per
		fmt.Fprintf(&edges, "%d %d\n%d %d\n", base, next, next, base)
	}
	for i := 0; i < n; i++ {
		for f := 0; f < 32; f++ {
			if rng.Float64() < 0.1 {
				fmt.Fprintf(&feats, "%.2f ", rng.Float64())
			} else {
				feats.WriteString("0 ")
			}
		}
		feats.WriteString("\n")
		fmt.Fprintf(&labels, "%d\n", (i/per)%4)
	}
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		return p
	}
	edgePath := write("edges.txt", edges.String())
	featPath := write("features.txt", feats.String())
	labelPath := write("labels.txt", labels.String())

	ds, err := datasets.LoadCitationFiles("ring-of-cliques", edgePath, featPath, labelPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %q: %d nodes, %d edges, %d-dim features (%.0f%% sparse), %d classes\n",
		ds.Name, ds.Adj.Rows, ds.Adj.NNZ(), ds.Features.Dim(1),
		100*ds.Features.ZeroFraction(), ds.NumClasses)

	dev := gpu.New(gpu.V100())
	prof := profiler.Attach(dev)
	env := models.NewEnv(ops.New(dev), 17)
	env.OnIteration = prof.NextIteration

	model := models.NewARGA(env, ds, models.ARGAConfig{})
	prof.Reset()
	for epoch := 0; epoch < 4; epoch++ {
		loss := model.TrainEpoch()
		fmt.Printf("epoch %d: loss %.4f\n", epoch+1, loss)
	}
	fmt.Println()
	fmt.Print(prof.Snapshot().String())
}
