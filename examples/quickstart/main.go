// Quickstart: characterize one GNNMark workload in a few lines.
//
// Trains the ARGA graph autoencoder on a Cora-like citation graph on the
// simulated V100, then prints the training losses and the full nvprof-style
// characterization report (operation breakdown, instruction mix, cache and
// stall behavior, transfer sparsity).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gnnmark/internal/core"
)

func main() {
	res, err := core.Run(core.RunConfig{
		Workload: "ARGA",
		Dataset:  "cora",
		Epochs:   4,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload %s on %s (%d trainable parameters)\n",
		res.Workload, res.Dataset, res.ParamCount)
	fmt.Println("training losses per epoch (the model genuinely learns):")
	for i, l := range res.Losses {
		fmt.Printf("  epoch %d: loss %.4f  (%.3f ms simulated GPU time)\n",
			i+1, l, 1e3*res.EpochSeconds[i])
	}
	fmt.Println()
	fmt.Println("characterization report:")
	fmt.Print(res.Report.String())
}
