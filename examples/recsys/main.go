// Recommendation with PinSAGE on a MovieLens-like bipartite graph.
//
// Demonstrates the paper's dataset-dependence finding: the same model
// profiled on MVL (narrow features, sort-heavy sampling) and NWP (10x wider
// features, element-wise-heavy) produces very different operation mixes —
// and shows the random-walk sampler producing ranked neighbors.
//
//	go run ./examples/recsys
package main

import (
	"fmt"
	"math/rand"

	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/graph"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
	"gnnmark/internal/profiler"
)

func main() {
	// Peek at the sampler itself first: PinSAGE ranks neighbors by
	// random-walk visit counts instead of using raw adjacency.
	rng := rand.New(rand.NewSource(11))
	mvl := datasets.MovieLens(rng)
	sampler := graph.NewRandomWalkSampler(mvl.ItemUsers, mvl.UserItems, 48, 2, 5)
	ns := sampler.Sample(rng, 10)
	fmt.Printf("random-walk neighborhood of item 10: %v (weights %.2f)\n\n",
		ns.Neighbors, ns.Weights)

	for _, name := range []string{"MVL", "NWP"} {
		dev := gpu.New(gpu.V100())
		prof := profiler.Attach(dev)
		env := models.NewEnv(ops.New(dev), 11)
		env.OnIteration = prof.NextIteration

		var ds *datasets.Bipartite
		if name == "MVL" {
			ds = datasets.MovieLens(env.RNG)
		} else {
			ds = datasets.NowPlaying(env.RNG)
		}
		model := models.NewPSAGE(env, ds, models.PSAGEConfig{Batches: 6})
		prof.Reset()
		dev.ResetClock()

		var loss float64
		for epoch := 0; epoch < 3; epoch++ {
			loss = model.TrainEpoch()
		}
		r := prof.Snapshot()
		fmt.Printf("%s: items=%d features=%d  final ranking loss %.4f\n",
			name, ds.Items, ds.ItemFeatures.Dim(1), loss)
		fmt.Printf("  sort %.1f%%  element-wise %.1f%%  H2D sparsity %.1f%%\n\n",
			100*r.TimeShare[gpu.OpSort], 100*r.TimeShare[gpu.OpElementWise],
			100*r.AvgSparsity)
	}
	fmt.Println("NWP's 10x feature width shifts time from sorting into " +
		"element-wise work, exactly as the paper's Figure 2 reports.")
}
