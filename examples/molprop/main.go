// Molecular property prediction with DeepGCN on ogbg-molhiv-like data.
//
// Trains the deep residual GCN on batched molecule graphs and shows the
// paper's depth story: deeper models are more element-wise-heavy (residual
// adds, activations, norms at every layer) and cost proportionally more.
//
//	go run ./examples/molprop
package main

import (
	"fmt"

	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
	"gnnmark/internal/profiler"
)

func run(layers int) {
	dev := gpu.New(gpu.V100())
	prof := profiler.Attach(dev)
	env := models.NewEnv(ops.New(dev), 5)
	env.OnIteration = prof.NextIteration

	ds := datasets.MolHIV(env.RNG)
	model := models.NewDGCN(env, ds, models.DGCNConfig{Layers: layers})
	prof.Reset()
	dev.ResetClock()

	var loss float64
	for epoch := 0; epoch < 3; epoch++ {
		loss = model.TrainEpoch()
	}
	r := prof.Snapshot()
	fmt.Printf("DeepGCN-%d: %d molecules, loss %.4f after 3 epochs\n",
		layers, len(ds.Graphs), loss)
	fmt.Printf("  element-wise %.1f%%  batchnorm %.1f%%  GEMM %.1f%%  SpMM %.1f%%  (%.2f ms/epoch)\n",
		100*r.TimeShare[gpu.OpElementWise], 100*r.TimeShare[gpu.OpBatchNorm],
		100*r.TimeShare[gpu.OpGEMM], 100*r.TimeShare[gpu.OpSpMM],
		1e3*r.KernelSeconds/3)
}

func main() {
	fmt.Println("DeepGCN residual depth study (paper: deep GCNs are viable,")
	fmt.Println("but their per-layer element-wise work dominates execution):")
	fmt.Println()
	for _, layers := range []int{4, 14, 28} {
		run(layers)
	}
}
