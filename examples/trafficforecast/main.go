// Traffic forecasting with STGCN (the paper's dynamic-graph workload).
//
// Builds the METR-LA-like sensor network, trains the spatio-temporal GCN
// to predict speeds 15 minutes ahead, and reports the error improvement
// plus where the GPU time went — the convolution-dominated profile of the
// paper's Figure 2.
//
//	go run ./examples/trafficforecast
package main

import (
	"fmt"

	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
	"gnnmark/internal/profiler"
)

func main() {
	dev := gpu.New(gpu.V100())
	prof := profiler.Attach(dev)
	env := models.NewEnv(ops.New(dev), 7)
	env.OnIteration = prof.NextIteration

	ds := datasets.METRLA(env.RNG)
	fmt.Printf("sensor network: %d sensors, %d edges, %d timesteps of speeds\n",
		ds.Sensors, ds.Adj.NNZ(), ds.Series.Dim(0))

	model := models.NewSTGCN(env, ds, models.STGCNConfig{
		Window:  12, // one hour of 5-minute readings
		Horizon: 3,  // predict 15 minutes ahead
	})
	prof.Reset()
	dev.ResetClock()

	var first, last float64
	for epoch := 0; epoch < 5; epoch++ {
		loss := model.TrainEpoch()
		prof.MarkEpoch()
		if epoch == 0 {
			first = loss
		}
		last = loss
		fmt.Printf("epoch %d: forecast MSE %.4f\n", epoch+1, loss)
	}
	fmt.Printf("error reduced %.1fx over training\n", first/last)

	r := prof.Snapshot()
	fmt.Printf("\nconv share of GPU time: %.1f%% (the paper's STGCN signature)\n",
		100*r.TimeShare[gpu.OpConv])
	fmt.Print(r.String())
}
