// Multi-GPU strong-scaling study (the paper's Figure 9) from the public
// API: simulate PyTorch-DDP training of two contrasting workloads on a
// 4xV100 NVLink node.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"

	"gnnmark/internal/datasets"
	"gnnmark/internal/ddp"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
)

func factory(workload string) ddp.WorkloadFactory {
	return func(div int) (models.Workload, *gpu.Device) {
		dev := gpu.New(gpu.V100())
		env := models.NewEnv(ops.New(dev), 3)
		switch workload {
		case "STGCN":
			return models.NewSTGCN(env, datasets.METRLA(env.RNG), models.STGCNConfig{
				Channels: 32, BatchSize: 48, Batches: 1, BatchDivisor: div,
			}), dev
		case "PSAGE":
			return models.NewPSAGE(env, datasets.MovieLens(env.RNG), models.PSAGEConfig{
				BatchSize: 64, Batches: 2, BatchDivisor: div,
			}), dev
		}
		panic("unknown workload")
	}
}

func main() {
	comm := ddp.DefaultComm()
	fmt.Printf("interconnect: %.0f GB/s effective allreduce, %.1f us latency\n\n",
		comm.NVLinkBandwidthGBps, comm.NVLinkLatencyUS)

	for _, w := range []string{"STGCN", "PSAGE"} {
		fmt.Printf("%s strong scaling:\n", w)
		for _, r := range ddp.StrongScaling(factory(w), []int{1, 2, 4}, comm) {
			note := ""
			if r.Replicated {
				note = "  [data replicated: sampler is not DDP-compatible]"
			}
			fmt.Printf("  %d GPU: epoch %.3f ms (compute %.3f + comm %.3f) -> speedup %.2fx%s\n",
				r.GPUs, 1e3*r.EpochSeconds, 1e3*r.ComputeSeconds, 1e3*r.CommSeconds,
				r.Speedup, note)
		}
		fmt.Println()
	}
	fmt.Println("STGCN shards its batch and gains; PSAGE's sampler cannot shard,")
	fmt.Println("so replicas do redundant work and extra GPUs only add cost —")
	fmt.Println("the two extremes of the paper's Figure 9.")
}
