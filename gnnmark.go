// Package gnnmark is a pure-Go reproduction of "GNNMark: A Benchmark Suite
// to Characterize Graph Neural Network Training on GPUs" (ISPASS 2021).
//
// It bundles eight GNN training workloads (PinSAGE, STGCN, DeepGCN,
// GraphWriter, k-GNN low/high, ARGA, Tree-LSTM), a from-scratch tensor /
// autograd / neural-network stack they train on, and an analytical V100
// performance model that turns every tensor operation into the profiler
// counters the paper reports: execution-time breakdown by operation class,
// instruction mix, GFLOPS/GIOPS, stall attribution, cache hit rates, memory
// divergence, host-to-device transfer sparsity, and multi-GPU scaling.
//
// This file is the public facade over the internal packages. Typical use:
//
//	res, err := gnnmark.Run(gnnmark.RunConfig{Workload: "STGCN"})
//	fmt.Print(res.Report.String())
//
// or regenerate a whole figure of the paper:
//
//	suite, _ := gnnmark.Characterize(gnnmark.RunConfig{Epochs: 3})
//	fmt.Print(suite.Fig2())
package gnnmark

import (
	"gnnmark/internal/bench"
	"gnnmark/internal/core"
)

// RunConfig configures one characterization run; see core.RunConfig.
type RunConfig = core.RunConfig

// RunResult is the outcome of one characterization run.
type RunResult = core.RunResult

// Spec is one Table I row of the suite registry.
type Spec = core.Spec

// Suite is a full-suite characterization with per-figure formatters
// (Fig2 through Fig8).
type Suite = bench.Suite

// ScalingResult is one workload's Figure 9 strong-scaling series.
type ScalingResult = bench.ScalingResult

// Registry returns the eight workloads with their Table I metadata.
func Registry() []Spec { return core.Registry() }

// Run characterizes a single workload.
func Run(cfg RunConfig) (RunResult, error) { return core.Run(cfg) }

// Characterize runs the full suite (every workload, PSAGE on both datasets)
// and returns the figure formatters.
func Characterize(cfg RunConfig) (*Suite, error) { return bench.Characterize(cfg) }

// Table1 renders the suite inventory.
func Table1() string { return bench.Table1() }

// Fig9 runs the multi-GPU strong-scaling study (1/2/4 simulated V100s).
func Fig9(cfg RunConfig) ([]ScalingResult, error) { return bench.Fig9(cfg) }

// FormatFig9 renders a Fig9 result set.
func FormatFig9(results []ScalingResult) string { return bench.FormatFig9(results) }
