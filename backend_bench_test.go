package gnnmark

import (
	"testing"

	"gnnmark/internal/backend"
	"gnnmark/internal/opbench"
)

// Serial-vs-parallel backend benchmarks over the opbench shape classes: the
// exact case definitions `gnnmark opbench` sweeps (internal/opbench/shapes.go),
// so `go test -bench BackendOps` sub-benchmark names line up with
// BENCH_opbench.json result keys and the two views describe identical work.
// Tree-LSTM-sized cases (GEMM/tlstm.gates, ElementWise/tlstm.small) double as
// the small-launch guard: the parallel backend must take its serial fallback
// there and stay within noise of it.

// BenchmarkBackendOps measures every opbench case on every backend.
func BenchmarkBackendOps(b *testing.B) {
	for _, c := range opbench.Cases() {
		for _, name := range backend.Names() {
			be, err := backend.New(name)
			if err != nil {
				b.Fatal(err)
			}
			run := c.Runner(1)
			b.Run(c.Key()+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(c.Bytes)
				for i := 0; i < b.N; i++ {
					run(be)
				}
			})
		}
	}
}

// BenchmarkBackendSmoke measures only the smoke subset — the cases the CI
// perf gate re-measures every push.
func BenchmarkBackendSmoke(b *testing.B) {
	for _, c := range opbench.SmokeCases() {
		for _, name := range backend.Names() {
			be, err := backend.New(name)
			if err != nil {
				b.Fatal(err)
			}
			run := c.Runner(1)
			b.Run(c.Key()+"/"+name, func(b *testing.B) {
				b.ReportAllocs()
				b.SetBytes(c.Bytes)
				for i := 0; i < b.N; i++ {
					run(be)
				}
			})
		}
	}
}
