package gnnmark

import (
	"math/rand"
	"testing"

	"gnnmark/internal/backend"
)

// Serial-vs-parallel backend benchmarks over the three kernel shapes the
// suite spends its time in: a square GEMM (model layers), a Cora-scale SpMM
// (full-graph aggregation), and a 1M-element pointwise op. The small-op
// variants check that Tree-LSTM-sized launches do not regress under the
// parallel backend (they must take its serial fallback path).

func randSlice(rng *rand.Rand, n int) []float32 {
	s := make([]float32, n)
	for i := range s {
		s[i] = rng.Float32()*2 - 1
	}
	return s
}

// coraCSR builds a random CSR at the scale of the Cora citation graph:
// 2708 nodes, ~10556 directed edges.
func coraCSR(rng *rand.Rand) (rowPtr, colIdx []int32, rows int) {
	rows = 2708
	const nnz = 10556
	counts := make([]int32, rows)
	for i := 0; i < nnz; i++ {
		counts[rng.Intn(rows)]++
	}
	rowPtr = make([]int32, rows+1)
	for i, c := range counts {
		rowPtr[i+1] = rowPtr[i] + c
	}
	colIdx = make([]int32, nnz)
	for i := range colIdx {
		colIdx[i] = int32(rng.Intn(rows))
	}
	return rowPtr, colIdx, rows
}

func backendsUnderTest(b *testing.B) map[string]backend.Backend {
	b.Helper()
	return map[string]backend.Backend{
		"serial":   backend.NewSerial(),
		"parallel": backend.NewParallel(),
	}
}

// BenchmarkBackendGEMM512 multiplies two 512x512 matrices: the acceptance
// shape for the parallel backend's >=2x speedup target.
func BenchmarkBackendGEMM512(b *testing.B) {
	const n = 512
	rng := rand.New(rand.NewSource(1))
	a := randSlice(rng, n*n)
	bm := randSlice(rng, n*n)
	out := make([]float32, n*n)
	for name, be := range backendsUnderTest(b) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = 0
				}
				be.MatMul(a, bm, out, n, n, n)
			}
		})
	}
}

// BenchmarkBackendSpMMCora aggregates 128-wide features over a Cora-scale
// CSR adjacency.
func BenchmarkBackendSpMMCora(b *testing.B) {
	const f = 128
	rng := rand.New(rand.NewSource(1))
	rowPtr, colIdx, rows := coraCSR(rng)
	x := randSlice(rng, rows*f)
	out := make([]float32, rows*f)
	for name, be := range backendsUnderTest(b) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range out {
					out[j] = 0
				}
				be.SpMM(rowPtr, colIdx, nil, x, out, rows, f)
			}
		})
	}
}

// BenchmarkBackendElementWise1M applies a fused axpy over 1M elements.
func BenchmarkBackendElementWise1M(b *testing.B) {
	const n = 1 << 20
	rng := rand.New(rand.NewSource(1))
	x := randSlice(rng, n)
	y := randSlice(rng, n)
	out := make([]float32, n)
	for name, be := range backendsUnderTest(b) {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.AddScaled(out, x, y, 0.5)
			}
		})
	}
}

// BenchmarkBackendSmallOps runs Tree-LSTM-sized kernels (a 32x128x512 gate
// GEMM and a 4K-element pointwise op) where parallel must fall back to the
// serial path and stay within noise of it.
func BenchmarkBackendSmallOps(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const m, k, n = 32, 128, 512
	a := randSlice(rng, m*k)
	w := randSlice(rng, k*n)
	gemmOut := make([]float32, m*n)
	const ewN = 4096
	x := randSlice(rng, ewN)
	y := randSlice(rng, ewN)
	ewOut := make([]float32, ewN)
	for name, be := range backendsUnderTest(b) {
		b.Run("GEMM32x128x512/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for j := range gemmOut {
					gemmOut[j] = 0
				}
				be.MatMul(a, w, gemmOut, m, n, k)
			}
		})
		b.Run("EW4096/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				be.AddScaled(ewOut, x, y, 0.5)
			}
		})
	}
}
