package main

import (
	"errors"
	"fmt"
	"os"

	"gnnmark/internal/scenario"
)

// runScenario implements `gnnmark scenario run|check FILE...`: the CLI
// face of the declarative chaos harness. `check` parses and validates
// without executing; `run` executes each scenario and checks its
// assertions, exiting non-zero with the failed assertion named.
func runScenario(args []string) {
	if len(args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: gnnmark scenario run|check FILE...")
		os.Exit(2)
	}
	sub, files := args[0], args[1:]
	switch sub {
	case "check":
		for _, path := range files {
			sc, err := loadScenario(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gnnmark:", err)
				os.Exit(1)
			}
			fmt.Printf("ok %s: scenario %q (%d node(s), %d event(s), %d assertion(s))\n",
				path, sc.Name, len(sc.Fleet.Nodes), len(sc.Events), len(sc.Assertions))
		}
	case "run":
		for _, path := range files {
			sc, err := loadScenario(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gnnmark:", err)
				os.Exit(1)
			}
			out, err := scenario.Run(sc)
			if out != nil {
				fmt.Print(out.Summary())
			}
			if err != nil {
				var ae *scenario.AssertionError
				if errors.As(err, &ae) {
					fmt.Fprintf(os.Stderr, "gnnmark: %s: %v\n", path, err)
					os.Exit(1)
				}
				fmt.Fprintln(os.Stderr, "gnnmark:", err)
				os.Exit(1)
			}
			fmt.Printf("pass %s: %d assertion(s) held\n", path, len(sc.Assertions))
		}
	default:
		fmt.Fprintf(os.Stderr, "gnnmark: unknown scenario subcommand %q (want run or check)\n", sub)
		os.Exit(2)
	}
}

// loadScenario parses and validates one scenario file, stamping the path
// onto validation errors so every failure reads "file:line: message".
func loadScenario(path string) (*scenario.Scenario, error) {
	sc, err := scenario.ParseFile(path)
	if err != nil {
		return nil, err
	}
	if err := sc.Validate(); err != nil {
		var pe *scenario.ParseError
		if errors.As(err, &pe) && pe.File == "" {
			pe.File = path
		}
		return nil, err
	}
	return sc, nil
}
