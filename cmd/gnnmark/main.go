// Command gnnmark runs the GNNMark suite reproduction: it trains the eight
// GNN workloads on a simulated V100, collects the paper's characterization
// metrics, and prints every table and figure of the evaluation.
//
// Usage:
//
//	gnnmark table1
//	gnnmark fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9 [flags]
//	gnnmark run -workload PSAGE -dataset NWP [flags]
//	gnnmark all [flags]
//	gnnmark ablate-fp16 [flags]
//	gnnmark opbench -out BENCH_opbench.json [-smoke]
//	gnnmark benchdiff [-warn-only] OLD.json NEW.json
//	gnnmark serve-bench [-replicas N -batches 1,4,16 -cache-rows 0,1024] [-smoke]
//	gnnmark scenario run|check FILE...
//
// Flags: -epochs N, -seed N, -warps N (cache-replay sampling budget; lower
// is faster), -workload KEY, -dataset NAME; -pipeline-depth N enables the
// asynchronous input pipeline (with -loader-workers N and -compress-h2d);
// `run` additionally takes -metrics-out FILE (host metrics JSON) and
// -host-trace FILE (merged host+device chrome://tracing timeline).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"gnnmark/internal/backend"
	"gnnmark/internal/bench"
	"gnnmark/internal/core"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/obs"
	"gnnmark/internal/opbench"
	"gnnmark/internal/ops"
	"gnnmark/internal/report"
	"gnnmark/internal/serve"
	"gnnmark/internal/stream"
	"gnnmark/internal/trace"
	"gnnmark/internal/vmem"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	epochs := fs.Int("epochs", 3, "training epochs per workload")
	seed := fs.Int64("seed", 1, "random seed")
	warps := fs.Int("warps", 4096, "max sampled warps per kernel (model fidelity/speed)")
	workload := fs.String("workload", "ARGA", "workload key (run command)")
	dataset := fs.String("dataset", "", "dataset name (run command; empty = default)")
	gpuName := fs.String("gpu", "v100", "device preset: v100, p100, a100, h100")
	target := fs.Float64("target", 0.5, "loss target for the ttt command")
	sweepKey := fs.String("sweep", "DGCN/layers", "sweep key: WORKLOAD/param (sweep command)")
	sweepVals := fs.String("values", "4,14,28", "comma-separated sweep values")
	traceOut := fs.String("trace", "", "write a chrome://tracing timeline to this file (run command)")
	metricsOut := fs.String("metrics-out", "", "write the host-observability metrics snapshot (JSON) to this file (run command)")
	hostTrace := fs.String("host-trace", "", "write a merged host+device chrome://tracing timeline to this file (run command)")
	maxEpochs := fs.Int("max-epochs", 50, "epoch cutoff for the ttt command")
	backendName := fs.String("backend", "serial", "CPU numerics backend: serial or parallel (identical results; parallel is faster on large workloads)")
	gpus := fs.Int("gpus", 1, "simulated GPU count for executed DDP training (run command; >1 trains replicas with bucketed ring-allreduce)")
	parallelism := fs.String("parallelism", "ddp", "multi-GPU execution plane for the run command: ddp (replicated model, sharded batches) or partitioned (one graph partition per GPU with halo exchange; ARGA and DGCN only)")
	overlap := fs.Bool("overlap", true, "overlap halo exchange with interior compute (partitioned plane; false serializes every exchange)")
	hbmGB := fs.Float64("hbm-gb", 0, "simulated device-memory budget in GiB (0 = GPU preset capacity; too small fails with a simulated OOM report)")
	pipelineDepth := fs.Int("pipeline-depth", 0, "asynchronous input pipeline prefetch depth (0 = synchronous loading; numerics are identical either way)")
	loaderWorkers := fs.Int("loader-workers", 0, "input-loader worker goroutines (0 = default; affects host scheduling only)")
	compressH2D := fs.Bool("compress-h2d", false, "time H2D copies on sparsity-encoded bytes (zero-run/bitmap codec); requires -pipeline-depth > 0")
	benchOut := fs.String("out", "BENCH_opbench.json", "output path for the opbench report")
	benchSmoke := fs.Bool("smoke", false, "opbench: reduced CI sweep; serve-bench: single low-load arm asserting nonzero QPS and zero rejects")
	benchReps := fs.Int("reps", 0, "opbench: timed repetitions per measurement (0 = default plan)")
	benchBackends := fs.String("backends", "", "opbench: comma-separated backend names (empty = all)")
	diffBudget := fs.Float64("budget", 1.10, "benchdiff: regression budget as a median ratio (1.10 = fail beyond +10%)")
	diffMADK := fs.Float64("mad-k", 4, "benchdiff: significance bar in combined MADs")
	diffWarnOnly := fs.Bool("warn-only", false, "benchdiff: report regressions without failing (coverage/schema drift still fails)")
	serveReplicas := fs.Int("replicas", 2, "serve-bench: frozen-replica count, one simulated device each")
	serveQPS := fs.Float64("serve-qps", 0, "serve-bench: offered open-loop arrival rate (0 = 4x the measured batch-1 capacity)")
	serveDuration := fs.Float64("serve-duration", 0, "serve-bench: arrival-trace horizon in simulated seconds (0 = 400 batch-1 service times)")
	maxWaitUS := fs.Float64("max-wait-us", 0, "serve-bench: micro-batching window in microseconds (0 = one batch-1 service time)")
	queueCap := fs.Int("queue-cap", 64, "serve-bench: admission-queue bound; arrivals beyond it are rejected (negative = unbounded)")
	serveBatches := fs.String("batches", "1,4,16", "serve-bench: comma-separated MaxBatch policy arms")
	cacheRows := fs.String("cache-rows", "0,1024", "serve-bench: comma-separated embedding-cache sizes in rows (0 = no cache)")
	arrivalsPath := fs.String("arrivals", "", "serve-bench: replay this arrival-trace file (\"<timestamp_us> <item>\" lines) instead of generating one")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	cfg := core.RunConfig{Epochs: *epochs, Seed: *seed, SampledWarps: *warps, GPU: *gpuName, Backend: *backendName, GPUs: *gpus, HBMGB: *hbmGB,
		Parallelism: *parallelism, Overlap: *overlap,
		PipelineDepth: *pipelineDepth, LoaderWorkers: *loaderWorkers, CompressH2D: *compressH2D}
	if *metricsOut != "" || *hostTrace != "" {
		obs.Enable()
	}

	switch cmd {
	case "table1":
		fmt.Print(bench.Table1())
	case "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "figm":
		s := characterize(cfg)
		fmt.Print(figure(s, cmd))
	case "fig9":
		res, err := bench.Fig9(cfg)
		fail(err)
		fmt.Print(bench.FormatFig9(res))
	case "figp":
		figpCfg := cfg
		if figpCfg.PipelineDepth <= 0 {
			figpCfg.PipelineDepth = 4
		}
		res, err := bench.FigP(figpCfg)
		fail(err)
		fmt.Print(bench.FormatFigP(res, figpCfg.PipelineDepth, figpCfg.CompressH2D))
		writeObsOutputs(*metricsOut, *hostTrace, nil, nil)
	case "opbench":
		runOpbench(*benchOut, *benchSmoke, *benchReps, *benchBackends, *seed)
	case "benchdiff":
		runBenchdiff(fs.Args(), *diffBudget, *diffMADK, *diffWarnOnly)
	case "scenario":
		runScenario(fs.Args())
	case "run":
		cfg.Workload = *workload
		cfg.Dataset = *dataset
		if *traceOut != "" {
			runWithTrace(cfg, *traceOut)
			return
		}
		var rec *trace.Recorder
		if *hostTrace != "" && cfg.GPUs <= 1 {
			// Attach a device recorder before any kernels launch so the
			// merged timeline carries both planes; under DDP (many devices)
			// only the host plane is written.
			cfg.OnDevice = func(dev *gpu.Device) { rec = trace.Attach(dev, 0) }
		}
		if cfg.GPUs > 1 && cfg.Parallelism == "partitioned" {
			res, err := core.RunPartitioned(cfg)
			fail(err)
			fmt.Print(bench.FormatPartitionedRun(*workload, res))
			// Halo-exchange lanes render as named threads beside the host
			// spans: one "gpuN compute" / "gpuN halo" pair per rank.
			writeObsOutputs(*metricsOut, *hostTrace, nil, rankLanes(res.Lanes))
			return
		}
		if cfg.GPUs > 1 {
			res, err := core.RunDDP(cfg)
			fail(err)
			fmt.Print(bench.FormatStrongScaling(*workload, res))
			for _, r := range res {
				for i, hp := range r.HostPhases {
					fmt.Printf("obs %d-gpu epoch %d: %s\n", r.GPUs, i+1, hp)
				}
			}
			writeObsOutputs(*metricsOut, *hostTrace, nil, nil)
			return
		}
		r, err := core.Run(cfg)
		fail(err)
		fmt.Printf("%s on %s: %d params, losses %v\n", r.Workload, r.Dataset, r.ParamCount, r.Losses)
		fmt.Printf("epoch seconds (simulated): %v\n", r.EpochSeconds)
		fmt.Printf("device memory: peak live %s, reserved %s, %d allocs (%.1f%% reused, %.1f%% fragmentation)\n",
			vmem.FormatBytes(r.Mem.PeakLive), vmem.FormatBytes(r.Mem.PeakReserved),
			r.Mem.Allocs, 100*r.Mem.ReuseRate(), 100*r.Mem.PeakFragmentation())
		for i, hp := range r.HostPhases {
			line := fmt.Sprintf("obs epoch %d: %s", i+1, hp)
			if i < len(r.Pipe) {
				line += ", " + pipeSummary(r.Pipe[i])
			}
			fmt.Println(line)
			if i < len(r.HostOpClasses) {
				fmt.Printf("obs epoch %d op classes: %s\n", i+1, r.HostOpClasses[i].Summary(hp.PhaseNanos()))
			}
		}
		if len(r.HostPhases) == 0 {
			// Without host observability the pipeline stats still print.
			for i, pe := range r.Pipe {
				fmt.Printf("pipeline epoch %d: %s\n", i+1, pipeSummary(pe))
			}
		}
		fmt.Print(r.Report.String())
		writeObsOutputs(*metricsOut, *hostTrace, rec, r.StreamLanes)
	case "all":
		fmt.Print(bench.Table1())
		fmt.Println()
		s := characterize(cfg)
		for _, f := range []string{"fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "figm"} {
			fmt.Print(figure(s, f))
			fmt.Println()
		}
		res, err := bench.Fig9(cfg)
		fail(err)
		fmt.Print(bench.FormatFig9(res))
	case "ablate-fp16":
		ablateFP16(cfg)
	case "ablate-l1bypass":
		ablateL1Bypass(cfg)
	case "infer":
		cfg.Workload = *workload
		cfg.Dataset = *dataset
		train, inf, err := bench.InferenceContrast(cfg)
		fail(err)
		fmt.Print(bench.FormatInference(*workload, train, inf))
	case "dnn-contrast":
		s := characterize(cfg)
		fmt.Print(bench.FormatContrast(s, bench.DNNBaseline(cfg)))
	case "gpucompare":
		cfg.Workload = *workload
		reports, err := bench.GPUCompare(cfg)
		fail(err)
		fmt.Print(bench.FormatGPUCompare(*workload, reports))
	case "datasets":
		fmt.Print(bench.DatasetInventory(*seed))
	case "params":
		fmt.Print(bench.ModelInventory(*seed))
	case "report":
		s := characterize(cfg)
		res, err := bench.Fig9(cfg)
		fail(err)
		out := *traceOut
		if out == "" {
			out = "gnnmark-report.html"
		}
		f, err := os.Create(out)
		fail(err)
		defer f.Close()
		fail(report.WriteHTML(f, s, res))
		fmt.Println("wrote", out)
	case "partitioned":
		res, err := bench.PartitionedARGA(cfg)
		fail(err)
		fmt.Print(bench.FormatPartitioned(res))
	case "figpart":
		if cfg.GPUs <= 1 {
			cfg.GPUs = 4
		}
		res, err := bench.FigPart(cfg)
		fail(err)
		fmt.Print(bench.FormatFigPart(res))
		writeObsOutputs(*metricsOut, *hostTrace, nil, nil)
	case "figf":
		res, err := bench.FigF(cfg)
		fail(err)
		fmt.Print(bench.FormatFigF(res))
		writeObsOutputs(*metricsOut, *hostTrace, nil, nil)
	case "serve-bench":
		// The flagship serving workload is PinSAGE; -workload overrides.
		cfg.Workload = "PSAGE"
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "workload" {
				cfg.Workload = *workload
			}
		})
		cfg.Dataset = *dataset
		scfg := bench.ServeConfig{
			Run:            cfg,
			Replicas:       *serveReplicas,
			QPS:            *serveQPS,
			Duration:       *serveDuration,
			MaxWaitSeconds: *maxWaitUS * 1e-6,
			QueueCap:       *queueCap,
			Batches:        parseInts(*serveBatches),
			CacheRows:      parseInts(*cacheRows),
		}
		if *arrivalsPath != "" {
			f, err := os.Open(*arrivalsPath)
			fail(err)
			reqs, err := serve.ParseArrivalTrace(f)
			f.Close()
			fail(err)
			scfg.Arrivals = reqs
		}
		if *benchSmoke {
			// One low-load arm on a reduced device model: a healthy endpoint
			// must complete requests and reject nothing.
			scfg.Run.Epochs = 1
			scfg.Run.SampledWarps = 256
			scfg.Replicas = 1
			scfg.LoadFactor = 0.5
			scfg.Batches = []int{8}
			scfg.CacheRows = []int{256}
		}
		res, err := bench.FigS(scfg)
		fail(err)
		fmt.Print(bench.FormatFigS(res))
		if *benchSmoke {
			for _, row := range res.Rows {
				if row.Stats.QPS <= 0 {
					fail(fmt.Errorf("serve-bench smoke: arm b%d/c%d served zero QPS",
						row.MaxBatch, row.CacheRows))
				}
				if row.Stats.Rejected > 0 {
					fail(fmt.Errorf("serve-bench smoke: arm b%d/c%d rejected %d requests at low load",
						row.MaxBatch, row.CacheRows, row.Stats.Rejected))
				}
			}
			fmt.Println("serve-bench smoke: ok — nonzero QPS, zero rejects at low load")
		}
		writeObsOutputs(*metricsOut, *hostTrace, nil, nil)
	case "sweep":
		var vals []int
		for _, f := range strings.Split(*sweepVals, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			fail(err)
			vals = append(vals, v)
		}
		points, err := bench.Sweep(*sweepKey, vals, cfg)
		fail(err)
		fmt.Print(bench.FormatSweep(*sweepKey, points))
	case "roofline":
		cfg.Workload = *workload
		cfg.Dataset = *dataset
		r, err := core.Run(cfg)
		fail(err)
		devCfg, err := gpu.Preset(*gpuName)
		fail(err)
		fmt.Print(bench.FormatRoofline(r.Label(), bench.Roofline(r, devCfg), devCfg))
	case "ttt":
		cfg.Workload = *workload
		cfg.Dataset = *dataset
		res, err := core.TimeToTrain(cfg, *target, *maxEpochs)
		fail(err)
		status := "converged"
		if !res.Converged {
			status = "cutoff"
		}
		fmt.Printf("%s time-to-train(loss<=%.3f): %d epochs, %.3f ms simulated GPU time (%s)\n",
			res.Workload, res.TargetLoss, res.Epochs, 1e3*res.SimSeconds, status)
		fmt.Printf("loss curve: %.4v\n", res.LossCurve)
	case "weakscale":
		res, err := bench.WeakScaling(*workload, cfg)
		fail(err)
		fmt.Print(bench.FormatWeakScaling(*workload, res))
	default:
		usage()
		os.Exit(2)
	}
}

// ablateL1Bypass compares every workload with and without the L1 data
// cache: the paper's suggested bypass mitigation.
func ablateL1Bypass(cfg core.RunConfig) {
	fmt.Println("L1-bypass ablation: simulated kernel seconds per run")
	fmt.Printf("%-12s %12s %12s %10s\n", "workload", "with L1", "bypassed", "delta")
	for _, sr := range core.DefaultSuite() {
		c := cfg
		c.Workload, c.Dataset = sr.Workload, sr.Dataset
		normal, bypassed, err := bench.L1BypassAblation(c)
		fail(err)
		fmt.Printf("%-12s %12.5f %12.5f %+9.1f%%\n", labelOf(sr), normal, bypassed,
			100*(bypassed-normal)/normal)
	}
}

// runWithTrace characterizes one workload while recording the kernel
// timeline, then writes it in the Chrome trace-event format.
func runWithTrace(cfg core.RunConfig, path string) {
	spec, err := core.Lookup(cfg.Workload)
	fail(err)
	devCfg, err := gpu.Preset(cfg.GPU)
	fail(err)
	if cfg.SampledWarps > 0 {
		devCfg.MaxSampledWarps = cfg.SampledWarps
	}
	be, err := backend.New(cfg.Backend)
	fail(err)
	dev := gpu.New(devCfg)
	rec := trace.Attach(dev, 0)
	env := models.NewEnv(ops.NewWith(dev, be), cfg.Seed)
	env.Pipeline = models.PipelineConfig{
		Depth:       cfg.PipelineDepth,
		Workers:     cfg.LoaderWorkers,
		CompressH2D: cfg.CompressH2D,
	}
	defer env.Close()
	dataset := cfg.Dataset
	if dataset == "" {
		dataset = spec.Datasets[0]
	}
	w := spec.Build(env, dataset, 1)
	// Construction kernels stay on the classic serialized path; the
	// overlapped timeline starts where training starts, so lane slices
	// are shifted by the construction offset to line up with the device
	// rows above them.
	pipeOrigin := dev.ElapsedSeconds()
	env.E.EnablePipeline(cfg.PipelineDepth, cfg.CompressH2D)
	epochs := cfg.Epochs
	if epochs == 0 {
		epochs = 1
	}
	for e := 0; e < epochs; e++ {
		w.TrainEpoch()
	}
	f, err := os.Create(path)
	fail(err)
	defer f.Close()
	events := rec.TimelineEvents()
	if lanes := env.E.StreamLanes(); len(lanes) > 0 {
		for li := range lanes {
			shifted := make([]stream.Slice, len(lanes[li].Slices))
			copy(shifted, lanes[li].Slices)
			for si := range shifted {
				shifted[si].Start += pipeOrigin
			}
			lanes[li].Slices = shifted
		}
		events = append(events, trace.StreamLaneEvents(lanes)...)
	}
	fail(trace.WriteEvents(f, events))
	fmt.Printf("%s: wrote %d timeline events to %s (open in chrome://tracing)\n",
		spec.Key, len(events), path)
}

// runOpbench executes the per-op microbenchmark sweep and writes the
// BENCH_opbench.json trajectory point. Progress goes to stderr so the
// artifact path on stdout stays scriptable.
func runOpbench(out string, smoke bool, reps int, backends string, seed int64) {
	cfg := opbench.Config{
		Smoke: smoke,
		Reps:  reps,
		Seed:  seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if backends != "" {
		for _, b := range strings.Split(backends, ",") {
			cfg.Backends = append(cfg.Backends, strings.TrimSpace(b))
		}
	}
	rep, err := opbench.Run(cfg)
	fail(err)
	fail(rep.WriteFile(out))
	mode := "full"
	if smoke {
		mode = "smoke"
	}
	fmt.Printf("wrote %d measurements (%s sweep) to %s\n", len(rep.Results), mode, out)
}

// runBenchdiff compares two opbench reports and renders the benchstat-style
// table. Exit codes: 2 for schema or shape-coverage drift (always fatal),
// 1 for a regression beyond the budget (suppressed by -warn-only), 0
// otherwise. Flags must precede the two positional report paths.
func runBenchdiff(paths []string, budget, madK float64, warnOnly bool) {
	if len(paths) != 2 {
		fmt.Fprintln(os.Stderr, "usage: gnnmark benchdiff [-budget N] [-mad-k N] [-warn-only] OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := opbench.ReadFile(paths[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark:", err)
		os.Exit(2)
	}
	cur, err := opbench.ReadFile(paths[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark:", err)
		os.Exit(2)
	}
	d, err := opbench.Compare(old, cur, opbench.DiffConfig{Budget: budget, MADK: madK})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark:", err)
		os.Exit(2)
	}
	fmt.Print(d.Markdown())
	if d.CoverageDrift() {
		fmt.Fprintln(os.Stderr, "gnnmark: shape coverage drift — the new report is missing required measurements")
		os.Exit(2)
	}
	if d.Regressions > 0 && !warnOnly {
		os.Exit(1)
	}
}

// pipeSummary renders one epoch's input-pipeline accounting: overlapped vs
// serialized epoch time, the copy-engine overlap fraction, and the raw vs
// wire H2D payload.
func pipeSummary(pe ops.PipeEpoch) string {
	return fmt.Sprintf("pipeline %.3fms vs sync %.3fms (%.2fx), overlap %.1f%%, h2d raw %s wire %s (%.2fx)",
		1e3*pe.PipeSeconds, 1e3*pe.SyncSeconds, pe.Speedup(), 100*pe.OverlapFraction(),
		vmem.FormatBytes(int64(pe.RawBytes)), vmem.FormatBytes(int64(pe.WireBytes())), pe.CompressionRatio())
}

// writeObsOutputs writes the host-observability artifacts requested on the
// command line: the metrics JSON snapshot and the merged host+device
// Chrome trace (host spans as a second process beside the device rows,
// stream lanes as extra named threads under the device process).
func writeObsOutputs(metricsPath, tracePath string, rec *trace.Recorder, lanes []stream.Lane) {
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		fail(err)
		fail(obs.WriteMetricsJSON(f))
		fail(f.Close())
		fmt.Println("wrote host metrics to", metricsPath)
	}
	if tracePath != "" {
		events := trace.HostEvents()
		if len(lanes) > 0 {
			events = append(trace.StreamLaneEvents(lanes), events...)
		}
		dropped := 0
		if rec != nil {
			events = append(rec.TimelineEvents(), events...)
			dropped = rec.Dropped()
		}
		f, err := os.Create(tracePath)
		fail(err)
		fail(trace.WriteEvents(f, events))
		fail(f.Close())
		fmt.Printf("wrote %d merged host+device trace events to %s (open in chrome://tracing)\n",
			len(events), tracePath)
		if dropped > 0 {
			fmt.Printf("note: %d device events dropped at the recorder limit\n", dropped)
		}
	}
}

// rankLanes flattens per-rank stream lanes into one list with rank-prefixed
// names, so every simulated GPU's compute and halo streams appear as their
// own named threads in the Chrome trace.
func rankLanes(lanes [][]stream.Lane) []stream.Lane {
	var out []stream.Lane
	for r, ls := range lanes {
		for _, l := range ls {
			l.Name = fmt.Sprintf("gpu%d %s", r, l.Name)
			out = append(out, l)
		}
	}
	return out
}

// parseInts parses a comma-separated integer list (sweep arms and the like).
func parseInts(s string) []int {
	var vals []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		fail(err)
		vals = append(vals, v)
	}
	return vals
}

func labelOf(sr core.SuiteRun) string {
	if sr.Workload == "PSAGE" {
		return sr.Workload + "(" + sr.Dataset + ")"
	}
	return sr.Workload
}

func characterize(cfg core.RunConfig) *bench.Suite {
	s, err := bench.Characterize(cfg)
	fail(err)
	return s
}

func figure(s *bench.Suite, name string) string {
	switch name {
	case "fig2":
		return s.Fig2()
	case "fig3":
		return s.Fig3()
	case "fig4":
		return s.Fig4()
	case "fig5":
		return s.Fig5()
	case "fig6":
		return s.Fig6()
	case "fig7":
		return s.Fig7()
	case "fig8":
		return s.Fig8()
	case "figm":
		return s.FigM()
	}
	panic("unknown figure " + name)
}

// ablateFP16 compares fp32 and fp16 storage modes per workload: the paper's
// half-precision future-work item.
func ablateFP16(cfg core.RunConfig) {
	fmt.Println("fp16 ablation: simulated kernel seconds per epoch (fp32 vs fp16)")
	fmt.Printf("%-12s %12s %12s %8s\n", "workload", "fp32 (s)", "fp16 (s)", "speedup")
	for _, sr := range core.DefaultSuite() {
		c := cfg
		c.Workload, c.Dataset = sr.Workload, sr.Dataset
		base, err := core.Run(c)
		fail(err)
		c.HalfPrecision = true
		half, err := core.Run(c)
		fail(err)
		b := base.Report.KernelSeconds
		h := half.Report.KernelSeconds
		fmt.Printf("%-12s %12.5f %12.5f %7.2fx\n", base.Label(), b, h, b/h)
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: gnnmark <command> [flags]
commands:
  run              characterize one workload (-workload, -dataset; -gpus N for executed multi-GPU training)
  all              the full reproduction: Table I plus every figure
  table1           print the suite inventory (Table I)
  fig2..fig8       regenerate one figure of the paper
  fig9             multi-GPU strong-scaling study
  figm             per-workload device-memory footprint table
  figp             asynchronous-input-pipeline study: sync vs overlapped epoch time (-pipeline-depth, -compress-h2d)
  figpart          executed DDP vs executed graph-partitioned training: scaling, comm volume, edge-cut sweep (-gpus)
  figf             goodput under churn: fault-injected fleet, elastic drop-and-reshard vs fail-stop replacement (-gpus, -seed)
  serve-bench      Figure S, the inference serving plane: QPS vs tail latency across micro-batch policies and
                   embedding-cache sizes on frozen-weight replicas (-replicas, -serve-qps, -serve-duration,
                   -max-wait-us, -queue-cap, -batches, -cache-rows, -arrivals FILE, -smoke)
  scenario         declarative chaos harness: "scenario run FILE..." executes scenario files (fleet + workload +
                   timed events + assertions) deterministically and exits non-zero on a failed assertion;
                   "scenario check FILE..." parses and validates without executing (see scenarios/)
  opbench          per-op microbenchmark sweep over workload shape classes on both backends (-out, -smoke, -reps, -backends)
  benchdiff        noise-aware comparison of two opbench reports (-budget, -mad-k, -warn-only, then OLD.json NEW.json)
  infer            training-vs-inference op-mix contrast (-workload)
  dnn-contrast     GNN suite vs conventional-CNN baseline
  weakscale        fixed-per-GPU-batch scaling study (-workload)
  ablate-fp16      half-precision storage ablation
  ablate-l1bypass  L1 cache bypass ablation
  gpucompare       characterize one workload on P100/V100/A100 (-workload)
  ttt              MLPerf-style time-to-train (-workload, -target, -max-epochs)
  roofline         per-operation roofline placement (-workload, -gpu)
  sweep            hyperparameter sweep (-sweep WORKLOAD/param -values a,b,c)
  partitioned      ROC-style partitioned full-graph ARGA scaling what-if (analytical)
  report           write the full characterization as an HTML page (-trace sets the path)
  datasets         structural statistics of every synthetic dataset
  params           per-workload parameter and iteration counts
flags: -epochs N  -seed N  -warps N  -workload KEY  -dataset NAME  -backend serial|parallel  -gpus N  -hbm-gb N
       -parallelism ddp|partitioned  -overlap=true|false  (run: multi-GPU execution plane; partitioned = one graph part per GPU, halo exchange)
       -pipeline-depth N  -loader-workers N  -compress-h2d  (asynchronous input pipeline; identical numerics)
       -trace FILE  -metrics-out FILE  -host-trace FILE  (run/figp/figpart/figf/serve-bench: device trace / host metrics JSON / merged host+device trace)`)
}
