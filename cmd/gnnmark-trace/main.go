// Command gnnmark-trace prints a per-kernel-name time breakdown for one
// workload's training epoch: the tool used to calibrate the kernel recipes
// against the paper's figures, kept for model debugging.
//
// Usage: gnnmark-trace <PSAGE|STGCN|DGCN|GW|KGNNL|KGNNH|ARGA|TLSTM>
package main

import (
	"fmt"
	"os"
	"sort"

	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: gnnmark-trace <PSAGE|STGCN|DGCN|GW|KGNNL|KGNNH|ARGA|TLSTM>")
		os.Exit(2)
	}
	cfg := gpu.V100()
	cfg.MaxSampledWarps = 2048
	dev := gpu.New(cfg)
	times := map[string]float64{}
	counts := map[string]int{}
	dev.Subscribe(func(ks gpu.KernelStats) {
		key := fmt.Sprintf("%-12s %s", ks.Class, ks.Name)
		times[key] += ks.Seconds
		counts[key]++
	})
	env := models.NewEnv(ops.New(dev), 1)
	var w models.Workload
	switch os.Args[1] {
	case "STGCN":
		w = models.NewSTGCN(env, datasets.METRLA(env.RNG), models.STGCNConfig{})
	case "PSAGE":
		w = models.NewPSAGE(env, datasets.MovieLens(env.RNG), models.PSAGEConfig{})
	case "GW":
		w = models.NewGW(env, datasets.AGENDA(env.RNG), models.GWConfig{})
	case "KGNNL":
		w = models.NewKGNN(env, datasets.Proteins(env.RNG), models.KGNNConfig{K: 2})
	case "KGNNH":
		w = models.NewKGNN(env, datasets.Proteins(env.RNG), models.KGNNConfig{K: 3})
	case "ARGA":
		w = models.NewARGA(env, datasets.NewCitation(env.RNG, "cora"), models.ARGAConfig{})
	case "DGCN":
		w = models.NewDGCN(env, datasets.MolHIV(env.RNG), models.DGCNConfig{})
	case "TLSTM":
		w = models.NewTLSTM(env, datasets.SST(env.RNG), models.TLSTMConfig{})
	default:
		fmt.Fprintln(os.Stderr, "gnnmark-trace: unknown workload", os.Args[1])
		os.Exit(2)
	}
	// Ignore construction-time kernels; trace one training epoch.
	for k := range times {
		delete(times, k)
		delete(counts, k)
	}
	w.TrainEpoch()

	type kv struct {
		k string
		v float64
	}
	var list []kv
	var tot float64
	for k, v := range times {
		list = append(list, kv{k, v})
		tot += v
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	for _, e := range list {
		fmt.Printf("%7.2f%% %9.1fus n=%-5d %s\n", 100*e.v/tot, 1e6*e.v, counts[e.k], e.k)
	}
}
