// Command gnnmark-trace prints a per-kernel-name time breakdown for one
// workload's training epoch: the tool used to calibrate the kernel recipes
// against the paper's figures, kept for model debugging.
//
// With -gpus N (N > 1) it instead runs the executed graph-partitioned plane
// (ARGA or DGCN) and writes a chrome://tracing timeline in which every
// simulated GPU's compute and halo-exchange streams appear as their own
// named threads, so exposed communication is visible as compute-lane gaps.
//
// Usage:
//
//	gnnmark-trace <PSAGE|STGCN|DGCN|GW|KGNNL|KGNNH|ARGA|TLSTM>
//	gnnmark-trace -gpus 4 -out halo.json [-overlap=false] <ARGA|DGCN>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"gnnmark/internal/core"
	"gnnmark/internal/datasets"
	"gnnmark/internal/gpu"
	"gnnmark/internal/models"
	"gnnmark/internal/ops"
	"gnnmark/internal/stream"
	"gnnmark/internal/trace"
)

func main() {
	gpus := flag.Int("gpus", 1, "simulated GPU count; >1 runs the partitioned plane and writes a halo-lane trace")
	out := flag.String("out", "partitioned-trace.json", "trace output path (partitioned mode)")
	overlap := flag.Bool("overlap", true, "overlap halo exchange with interior compute (partitioned mode)")
	epochs := flag.Int("epochs", 1, "training epochs (partitioned mode)")
	warps := flag.Int("warps", 2048, "max sampled warps per kernel")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: gnnmark-trace [-gpus N -out FILE] <PSAGE|STGCN|DGCN|GW|KGNNL|KGNNH|ARGA|TLSTM>")
		os.Exit(2)
	}
	key := flag.Arg(0)
	if *gpus > 1 {
		partitionedTrace(key, *gpus, *epochs, *warps, *seed, *overlap, *out)
		return
	}
	kernelBreakdown(key, *warps, *seed)
}

// partitionedTrace trains the workload on the executed partitioned plane and
// writes every rank's stream lanes as named threads of the device process.
func partitionedTrace(key string, gpus, epochs, warps int, seed int64, overlap bool, out string) {
	res, err := core.RunPartitioned(core.RunConfig{
		Workload: key, GPUs: gpus, Epochs: epochs,
		SampledWarps: warps, Seed: seed, Overlap: overlap,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark-trace:", err)
		os.Exit(1)
	}
	var lanes []stream.Lane
	for r, ls := range res.Lanes {
		for _, l := range ls {
			l.Name = fmt.Sprintf("gpu%d %s", r, l.Name)
			lanes = append(lanes, l)
		}
	}
	f, err := os.Create(out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark-trace:", err)
		os.Exit(1)
	}
	defer f.Close()
	events := trace.StreamLaneEvents(lanes)
	if err := trace.WriteEvents(f, events); err != nil {
		fmt.Fprintln(os.Stderr, "gnnmark-trace:", err)
		os.Exit(1)
	}
	fmt.Printf("%s x%d partitioned: wrote %d lane events (%d lanes) to %s (open in chrome://tracing)\n",
		key, gpus, len(events), len(lanes), out)
	fmt.Printf("epoch seconds %v, halo exposed %.3f ms / hidden %.3f ms\n",
		res.EpochSeconds, 1e3*res.ExposedHaloSeconds, 1e3*res.OverlappedHaloSeconds)
}

// kernelBreakdown is the classic single-device calibration mode.
func kernelBreakdown(key string, warps int, seed int64) {
	cfg := gpu.V100()
	cfg.MaxSampledWarps = warps
	dev := gpu.New(cfg)
	times := map[string]float64{}
	counts := map[string]int{}
	dev.Subscribe(func(ks gpu.KernelStats) {
		k := fmt.Sprintf("%-12s %s", ks.Class, ks.Name)
		times[k] += ks.Seconds
		counts[k]++
	})
	env := models.NewEnv(ops.New(dev), seed)
	var w models.Workload
	switch key {
	case "STGCN":
		w = models.NewSTGCN(env, datasets.METRLA(env.RNG), models.STGCNConfig{})
	case "PSAGE":
		w = models.NewPSAGE(env, datasets.MovieLens(env.RNG), models.PSAGEConfig{})
	case "GW":
		w = models.NewGW(env, datasets.AGENDA(env.RNG), models.GWConfig{})
	case "KGNNL":
		w = models.NewKGNN(env, datasets.Proteins(env.RNG), models.KGNNConfig{K: 2})
	case "KGNNH":
		w = models.NewKGNN(env, datasets.Proteins(env.RNG), models.KGNNConfig{K: 3})
	case "ARGA":
		w = models.NewARGA(env, datasets.NewCitation(env.RNG, "cora"), models.ARGAConfig{})
	case "DGCN":
		w = models.NewDGCN(env, datasets.MolHIV(env.RNG), models.DGCNConfig{})
	case "TLSTM":
		w = models.NewTLSTM(env, datasets.SST(env.RNG), models.TLSTMConfig{})
	default:
		fmt.Fprintln(os.Stderr, "gnnmark-trace: unknown workload", key)
		os.Exit(2)
	}
	// Ignore construction-time kernels; trace one training epoch.
	for k := range times {
		delete(times, k)
		delete(counts, k)
	}
	w.TrainEpoch()

	type kv struct {
		k string
		v float64
	}
	var list []kv
	var tot float64
	for k, v := range times {
		list = append(list, kv{k, v})
		tot += v
	}
	sort.Slice(list, func(i, j int) bool { return list[i].v > list[j].v })
	for _, e := range list {
		fmt.Printf("%7.2f%% %9.1fus n=%-5d %s\n", 100*e.v/tot, 1e6*e.v, counts[e.k], e.k)
	}
}
