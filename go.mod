module gnnmark

go 1.22
