package gnnmark

import (
	"os"
	"strings"
	"sync"
	"testing"

	"gnnmark/internal/core"
)

// The repository-level benchmarks regenerate every table and figure of the
// paper's evaluation. The suite characterization is shared across figure
// benchmarks (one full training sweep feeds Figures 2-8, exactly as one
// profiled run did in the paper); BenchmarkCharacterizeSuite measures that
// sweep itself, and BenchmarkFig9 the multi-GPU study.

var (
	benchOnce  sync.Once
	benchSuite *Suite
	benchErr   error
)

// benchCfg is the shared benchmark configuration. GNNMARK_BACKEND=parallel
// switches the numerics backend (results are identical; see
// internal/backend) so the suite benchmarks can be compared across backends
// without editing code.
func benchCfg() core.RunConfig {
	return core.RunConfig{Epochs: 1, Seed: 1, SampledWarps: 512, Backend: os.Getenv("GNNMARK_BACKEND")}
}

func sharedSuite(b *testing.B) *Suite {
	b.Helper()
	benchOnce.Do(func() { benchSuite, benchErr = Characterize(benchCfg()) })
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSuite
}

func requireText(b *testing.B, text string, frags ...string) {
	b.Helper()
	for _, f := range frags {
		if !strings.Contains(text, f) {
			b.Fatalf("output missing %q", f)
		}
	}
}

// BenchmarkCharacterizeSuite measures the full-suite characterization sweep
// that feeds Figures 2-8: training every workload on the simulated V100
// with the profiler attached.
func BenchmarkCharacterizeSuite(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Characterize(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1 regenerates the suite inventory (Table I).
func BenchmarkTable1(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		requireText(b, Table1(), "PinSAGE", "Tree-LSTM", "PROTEINS")
	}
}

// BenchmarkFig2 regenerates the execution-time breakdown (Figure 2).
func BenchmarkFig2(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig2(), "GEMM", "ElementWise", "PSAGE(MVL)")
	}
}

// BenchmarkFig3 regenerates the instruction mix (Figure 3).
func BenchmarkFig3(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig3(), "int32", "fp32", "average")
	}
}

// BenchmarkFig4 regenerates the GFLOPS/GIOPS rates (Figure 4).
func BenchmarkFig4(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig4(), "GFLOPS", "IPC")
	}
}

// BenchmarkFig5 regenerates the stall breakdown (Figure 5).
func BenchmarkFig5(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig5(), "memdep", "ifetch", "per-operation")
	}
}

// BenchmarkFig6 regenerates cache hit rates and divergence (Figure 6).
func BenchmarkFig6(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig6(), "L1", "divergent")
	}
}

// BenchmarkFig7 regenerates the transfer-sparsity averages (Figure 7).
func BenchmarkFig7(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig7(), "sparsity", "est.compr")
	}
}

// BenchmarkFig8 regenerates the sparsity-over-iterations series (Figure 8).
func BenchmarkFig8(b *testing.B) {
	s := sharedSuite(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		requireText(b, s.Fig8(), "iterations")
	}
}

// BenchmarkFig9 regenerates the multi-GPU strong-scaling study (Figure 9):
// each iteration re-runs the 7-workload x {1,2,4}-GPU DDP simulation.
func BenchmarkFig9(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Fig9(core.RunConfig{Seed: 1, SampledWarps: 512})
		if err != nil {
			b.Fatal(err)
		}
		requireText(b, FormatFig9(res), "PSAGE", "replicated", "ARGA excluded")
	}
}

// BenchmarkWorkloadEpoch measures one training epoch of each workload on
// the simulated device (the per-workload cost behind the figures).
func BenchmarkWorkloadEpoch(b *testing.B) {
	for _, sr := range core.DefaultSuite() {
		sr := sr
		label := sr.Workload
		if sr.Workload == "PSAGE" {
			label = sr.Workload + "_" + sr.Dataset
		}
		b.Run(label, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := benchCfg()
				cfg.Workload, cfg.Dataset = sr.Workload, sr.Dataset
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
